#ifndef FWDECAY_SAMPLING_RESERVOIR_H_
#define FWDECAY_SAMPLING_RESERVOIR_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/random.h"

// Classic (unweighted, undecayed) reservoir sampling — Vitter, TOMS 1985.
// This is the "no decay" baseline of the paper's Figure 3 experiments.

namespace fwdecay {

/// Algorithm R: uniform sample of k items without replacement, O(1) per
/// arrival (one random draw once the reservoir is full).
template <typename T>
class ReservoirSampler {
 public:
  explicit ReservoirSampler(std::size_t k) : k_(k) {
    FWDECAY_CHECK(k > 0);
    sample_.reserve(k);
  }

  /// Offers the next stream item.
  void Add(const T& item, Rng& rng) {
    ++seen_;
    if (sample_.size() < k_) {
      sample_.push_back(item);
      return;
    }
    const std::uint64_t j = rng.NextBounded(seen_);
    if (j < k_) sample_[j] = item;
  }

  const std::vector<T>& sample() const { return sample_; }
  std::uint64_t seen() const { return seen_; }
  std::size_t capacity() const { return k_; }

  /// Restores a checkpointed reservoir verbatim (slot order included —
  /// future replacements index into the array, so layout affects every
  /// subsequent sample). False if the sizes are inconsistent.
  bool RestoreState(std::uint64_t seen, std::vector<T> sample) {
    const std::uint64_t expect =
        seen < static_cast<std::uint64_t>(k_) ? seen
                                              : static_cast<std::uint64_t>(k_);
    if (sample.size() != expect) return false;
    seen_ = seen;
    sample_ = std::move(sample);
    return true;
  }

  /// Representation audit (DESIGN.md §7): Algorithm R keeps exactly
  /// min(k, seen) items — anything else means a lost or duplicated slot.
  void CheckInvariants() const {
    const std::uint64_t expect =
        seen_ < static_cast<std::uint64_t>(k_)
            ? seen_
            : static_cast<std::uint64_t>(k_);
    FWDECAY_CHECK_MSG(sample_.size() == expect,
                      "reservoir size is not min(k, seen)");
  }

 private:
  std::size_t k_;
  std::uint64_t seen_ = 0;
  std::vector<T> sample_;
};

/// Algorithm L (Li 1994): the skip-based accelerated reservoir sampler.
/// Equivalent distribution to Algorithm R but draws O(k log(n/k)) random
/// numbers total instead of one per item — the same acceleration idea the
/// paper cites for weighted sampling ("skip over" items, Section V-A).
template <typename T>
class SkipReservoirSampler {
 public:
  explicit SkipReservoirSampler(std::size_t k, Rng* rng)
      : k_(k), rng_(rng) {
    FWDECAY_CHECK(k > 0);
    FWDECAY_CHECK(rng != nullptr);
    sample_.reserve(k);
    w_ = std::exp(std::log(rng_->NextDoubleOpenZero()) /
                  static_cast<double>(k_));
  }

  /// Offers the next stream item; most calls only decrement the skip
  /// counter.
  void Add(const T& item) {
    ++seen_;
    if (sample_.size() < k_) {
      sample_.push_back(item);
      if (sample_.size() == k_) ScheduleNextSkip();
      return;
    }
    if (seen_ < next_accept_) return;
    sample_[rng_->NextBounded(k_)] = item;
    w_ *= std::exp(std::log(rng_->NextDoubleOpenZero()) /
                   static_cast<double>(k_));
    ScheduleNextSkip();
  }

  const std::vector<T>& sample() const { return sample_; }
  std::uint64_t seen() const { return seen_; }

  /// Representation audit (DESIGN.md §7): min(k, seen) items retained;
  /// w (the running acceptance key) stays in (0, 1); once full, the
  /// scheduled skip must lie in the future — a stale next_accept_ would
  /// make Add() accept every item, silently destroying uniformity.
  void CheckInvariants() const {
    const std::uint64_t expect =
        seen_ < static_cast<std::uint64_t>(k_)
            ? seen_
            : static_cast<std::uint64_t>(k_);
    FWDECAY_CHECK_MSG(sample_.size() == expect,
                      "skip-reservoir size is not min(k, seen)");
    FWDECAY_CHECK_MSG(w_ > 0.0 && w_ < 1.0,
                      "skip-reservoir acceptance key left (0, 1)");
    if (sample_.size() == k_) {
      FWDECAY_CHECK_MSG(next_accept_ > seen_,
                        "skip-reservoir scheduled skip is in the past");
    }
  }

 private:
  void ScheduleNextSkip() {
    const double u = rng_->NextDoubleOpenZero();
    const double skip = std::floor(std::log(u) / std::log1p(-w_));
    next_accept_ = seen_ + 1 + static_cast<std::uint64_t>(skip);
  }

  std::size_t k_;
  Rng* rng_;
  std::uint64_t seen_ = 0;
  std::uint64_t next_accept_ = 0;
  double w_ = 0.0;
  std::vector<T> sample_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SAMPLING_RESERVOIR_H_
