#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/hash.h"

namespace fwdecay {

CountMinSketch::CountMinSketch(double eps, double delta, std::uint64_t seed)
    : seed_(seed) {
  FWDECAY_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  FWDECAY_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
  depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  depth_ = std::max<std::size_t>(depth_, 1);
  cells_.assign(width_ * depth_, 0.0);
}

std::size_t CountMinSketch::CellIndex(std::size_t row,
                                      std::uint64_t key) const {
  const std::uint64_t h = HashU64(key, seed_ + row * 0x9e3779b9ULL);
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMinSketch::Update(std::uint64_t key, double weight) {
  FWDECAY_DCHECK(weight > 0.0);
  total_weight_ += weight;
  for (std::size_t row = 0; row < depth_; ++row) {
    cells_[CellIndex(row, key)] += weight;
  }
}

double CountMinSketch::Estimate(std::uint64_t key) const {
  double est = std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < depth_; ++row) {
    est = std::min(est, cells_[CellIndex(row, key)]);
  }
  return est;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  FWDECAY_CHECK(width_ == other.width_ && depth_ == other.depth_);
  FWDECAY_CHECK(seed_ == other.seed_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
  total_weight_ += other.total_weight_;
}

void CountMinSketch::ScaleWeights(double factor) {
  FWDECAY_CHECK(factor > 0.0);
  for (double& c : cells_) c *= factor;
  total_weight_ *= factor;
}

void CountMinSketch::CheckInvariants() const {
  FWDECAY_CHECK_MSG(!std::isnan(total_weight_) && total_weight_ >= 0.0,
                    "count-min total weight negative or NaN");
  FWDECAY_CHECK_MSG(cells_.size() == width_ * depth_,
                    "cell array size diverged from width * depth");
  for (std::size_t row = 0; row < depth_; ++row) {
    double row_sum = 0.0;
    for (std::size_t col = 0; col < width_; ++col) {
      const double c = cells_[row * width_ + col];
      FWDECAY_CHECK_MSG(!std::isnan(c) && c >= 0.0,
                        "count-min cell negative or NaN");
      row_sum += c;
    }
    const double tol =
        1e-6 * std::max(1.0, std::max(row_sum, total_weight_));
    FWDECAY_CHECK_MSG(std::abs(row_sum - total_weight_) <= tol,
                      "row does not sum to TotalWeight() (every update "
                      "touches exactly one cell per row)");
  }
}

void CountMinSketch::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(0x4e);  // 'N'
  writer->WriteU64(width_);
  writer->WriteU64(depth_);
  writer->WriteU64(seed_);
  writer->WriteDouble(total_weight_);
  for (double c : cells_) writer->WriteDouble(c);
}

std::optional<CountMinSketch> CountMinSketch::Deserialize(
    ByteReader* reader) {
  std::uint8_t tag = 0;
  std::uint64_t width = 0;
  std::uint64_t depth = 0;
  std::uint64_t seed = 0;
  double total = 0.0;
  if (!reader->ReadU8(&tag) || tag != 0x4e) return std::nullopt;
  if (!reader->ReadU64(&width) || width == 0) return std::nullopt;
  if (!reader->ReadU64(&depth) || depth == 0) return std::nullopt;
  if (!reader->ReadU64(&seed) || !reader->ReadDouble(&total)) {
    return std::nullopt;
  }
  // 2^27 doubles = 1 GiB of cells — far above any sane sketch, low
  // enough that a corrupt header can't OOM the process. Also guards the
  // width*depth multiplication itself against overflow.
  if (width > (std::uint64_t{1} << 27) || depth > (std::uint64_t{1} << 27) ||
      width * depth > (std::uint64_t{1} << 27)) {
    return std::nullopt;
  }
  CountMinSketch out(0.5, 0.5, seed);  // dimensions replaced below
  out.width_ = static_cast<std::size_t>(width);
  out.depth_ = static_cast<std::size_t>(depth);
  out.total_weight_ = total;
  out.cells_.assign(out.width_ * out.depth_, 0.0);
  for (double& c : out.cells_) {
    if (!reader->ReadDouble(&c)) return std::nullopt;
  }
  return out;
}

}  // namespace fwdecay
