#ifndef FWDECAY_SKETCH_HLL_H_
#define FWDECAY_SKETCH_HLL_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.h"
#include "util/check.h"
#include "util/hash.h"

// HyperLogLog distinct counter (Flajolet et al.) — an alternative,
// constant-size backend for the distinct-counting layer under the
// dominance-norm estimator (KMV is the default; HLL trades the ability
// to enumerate retained hashes for a fixed 2^p-byte footprint).

namespace fwdecay {

class HllSketch {
 public:
  /// `precision` p in [4, 18]: 2^p one-byte registers; relative standard
  /// error ~ 1.04 / sqrt(2^p). Sketches that will be merged must share
  /// `hash_seed`.
  explicit HllSketch(int precision = 12, std::uint64_t hash_seed = 0)
      : precision_(precision), hash_seed_(hash_seed) {
    FWDECAY_CHECK_MSG(precision >= 4 && precision <= 18,
                      "HLL precision must be in [4, 18]");
    registers_.assign(std::size_t{1} << precision, 0);
  }

  /// Observes a key (multiplicity-insensitive).
  void Insert(std::uint64_t key) {
    const std::uint64_t h = HashU64(key, hash_seed_);
    const std::size_t reg = static_cast<std::size_t>(h >> (64 - precision_));
    // Rank of the first set bit among the remaining 64 - p bits.
    const std::uint64_t rest = (h << precision_) | (std::uint64_t{1}
                                                    << (precision_ - 1));
    const auto rank = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
    if (rank > registers_[reg]) registers_[reg] = rank;
  }

  /// Estimated number of distinct keys (with the standard small-range
  /// linear-counting correction).
  double Estimate() const {
    const double m = static_cast<double>(registers_.size());
    double sum = 0.0;
    std::size_t zeros = 0;
    for (std::uint8_t r : registers_) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      zeros += (r == 0);
    }
    const double alpha =
        m <= 16 ? 0.673 : (m <= 32 ? 0.697 : (m <= 64 ? 0.709
                                                      : 0.7213 / (1.0 + 1.079 / m)));
    const double raw = alpha * m * m / sum;
    if (raw <= 2.5 * m && zeros > 0) {
      return m * std::log(m / static_cast<double>(zeros));
    }
    return raw;
  }

  /// Register-wise max merge (exact union semantics).
  void Merge(const HllSketch& other) {
    FWDECAY_CHECK(precision_ == other.precision_);
    FWDECAY_CHECK(hash_seed_ == other.hash_seed_);
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      registers_[i] = std::max(registers_[i], other.registers_[i]);
    }
  }

  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x4c);  // 'L'
    writer->WriteU8(static_cast<std::uint8_t>(precision_));
    writer->WriteU64(hash_seed_);
    for (std::uint8_t r : registers_) writer->WriteU8(r);
  }

  static std::optional<HllSketch> Deserialize(ByteReader* reader) {
    std::uint8_t tag = 0;
    std::uint8_t precision = 0;
    std::uint64_t seed = 0;
    if (!reader->ReadU8(&tag) || tag != 0x4c) return std::nullopt;
    if (!reader->ReadU8(&precision) || precision < 4 || precision > 18) {
      return std::nullopt;
    }
    if (!reader->ReadU64(&seed)) return std::nullopt;
    HllSketch out(precision, seed);
    for (std::uint8_t& r : out.registers_) {
      if (!reader->ReadU8(&r)) return std::nullopt;
    }
    return out;
  }

  int precision() const { return precision_; }
  std::uint64_t hash_seed() const { return hash_seed_; }
  std::size_t MemoryBytes() const { return registers_.size(); }

  /// Representation audit (DESIGN.md §7): exactly 2^p registers, each
  /// bounded by the maximum attainable rank 64 - p + 1 (Insert() ORs a
  /// sentinel bit at position p-1, capping the leading-zero count).
  /// Deserialize() accepts arbitrary register bytes, so an out-of-range
  /// register — which skews Estimate() multiplicatively — is only caught
  /// here. Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const {
    FWDECAY_CHECK_MSG(registers_.size() ==
                          (std::size_t{1} << precision_),
                      "HLL register count diverged from precision");
    const auto max_rank = static_cast<std::uint8_t>(65 - precision_);
    for (std::uint8_t r : registers_) {
      FWDECAY_CHECK_MSG(r <= max_rank,
                        "HLL register exceeds the maximum attainable "
                        "rank");
    }
  }

 private:
  int precision_;
  std::uint64_t hash_seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_HLL_H_
