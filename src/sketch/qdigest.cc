#include "sketch/qdigest.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.h"

namespace fwdecay {

namespace {

int Depth(std::uint64_t id) {
  return 63 - std::countl_zero(id);
}

}  // namespace

QDigest::QDigest(int universe_bits, double eps)
    : universe_bits_(universe_bits), eps_(eps) {
  FWDECAY_CHECK_MSG(universe_bits >= 1 && universe_bits <= 62,
                    "universe_bits must be in [1, 62]");
  FWDECAY_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  k_ = std::ceil(static_cast<double>(universe_bits) / eps);
  nodes_.reserve(static_cast<std::size_t>(8.0 * k_ / universe_bits) + 16);
}

std::uint64_t QDigest::RangeHi(std::uint64_t id) const {
  const int depth = Depth(id);
  const int shift = universe_bits_ - depth;
  const std::uint64_t offset = id - (std::uint64_t{1} << depth);
  return ((offset + 1) << shift) - 1;
}

std::uint64_t QDigest::RangeLo(std::uint64_t id) const {
  const int depth = Depth(id);
  const int shift = universe_bits_ - depth;
  const std::uint64_t offset = id - (std::uint64_t{1} << depth);
  return offset << shift;
}

void QDigest::Update(std::uint64_t value, double weight) {
  FWDECAY_DCHECK(weight > 0.0);
  FWDECAY_CHECK_MSG(value < (std::uint64_t{1} << universe_bits_),
                    "value outside q-digest universe");
  nodes_[LeafId(value)] += weight;
  total_weight_ += weight;
  // Compress lazily: the size bound only needs to hold up to a constant,
  // and compressing every O(k) updates keeps amortized cost O(1) map ops.
  if (++updates_since_compress_ >=
      static_cast<std::size_t>(k_) + 16) {
    Compress();
  }
}

void QDigest::Compress() {
  updates_since_compress_ = 0;
  if (nodes_.empty()) return;
  const double threshold = total_weight_ / k_;

  // Bottom-up, level by level, so that merges cascade: a parent created
  // by merging level-d nodes is itself a candidate at level d-1.
  std::vector<std::vector<std::uint64_t>> by_level(
      static_cast<std::size_t>(universe_bits_) + 1);
  for (const auto& [id, w] : nodes_) {
    by_level[static_cast<std::size_t>(Depth(id))].push_back(id);
  }
  for (int level = universe_bits_; level >= 1; --level) {
    for (std::uint64_t id : by_level[static_cast<std::size_t>(level)]) {
      auto it = nodes_.find(id);
      if (it == nodes_.end()) continue;  // merged as a sibling already
      const std::uint64_t sibling = id ^ 1;
      const std::uint64_t parent = id >> 1;
      double group = it->second;
      auto sib_it = nodes_.find(sibling);
      if (sib_it != nodes_.end()) group += sib_it->second;
      auto par_it = nodes_.find(parent);
      const bool parent_existed = par_it != nodes_.end();
      if (parent_existed) group += par_it->second;
      if (group > threshold) continue;
      // Erase before inserting: operator[] may rehash and invalidate the
      // iterators captured above.
      nodes_.erase(id);
      if (sib_it != nodes_.end()) nodes_.erase(sibling);
      nodes_[parent] = group;
      if (!parent_existed) {
        by_level[static_cast<std::size_t>(level) - 1].push_back(parent);
      }
    }
  }
}

std::uint64_t QDigest::Quantile(double phi) const {
  FWDECAY_CHECK(phi >= 0.0 && phi <= 1.0);
  if (nodes_.empty()) return 0;
  // Order nodes by ascending range-hi, breaking ties deeper-node-first:
  // this is the left-to-right postorder in which a node's weight is
  // counted after everything strictly inside and left of its range.
  std::vector<std::pair<std::uint64_t, double>> ordered(nodes_.begin(),
                                                        nodes_.end());
  std::sort(ordered.begin(), ordered.end(),
            [this](const auto& a, const auto& b) {
              const std::uint64_t ha = RangeHi(a.first);
              const std::uint64_t hb = RangeHi(b.first);
              if (ha != hb) return ha < hb;
              return Depth(a.first) > Depth(b.first);
            });
  const double target = phi * total_weight_;
  double acc = 0.0;
  for (const auto& [id, w] : ordered) {
    acc += w;
    if (acc >= target) return RangeHi(id);
  }
  return RangeHi(ordered.back().first);
}

double QDigest::Rank(std::uint64_t v) const {
  double rank = 0.0;
  for (const auto& [id, w] : nodes_) {
    if (RangeHi(id) <= v) rank += w;
  }
  return rank;
}

void QDigest::Merge(const QDigest& other) {
  FWDECAY_CHECK_MSG(universe_bits_ == other.universe_bits_,
                    "q-digest universes must match to merge");
  for (const auto& [id, w] : other.nodes_) nodes_[id] += w;
  total_weight_ += other.total_weight_;
  Compress();
}

void QDigest::ScaleWeights(double factor) {
  FWDECAY_CHECK(factor > 0.0);
  for (auto& [id, w] : nodes_) w *= factor;
  total_weight_ *= factor;
}

void QDigest::CheckInvariants() const {
  FWDECAY_CHECK_MSG(!std::isnan(total_weight_) && total_weight_ >= 0.0,
                    "q-digest total weight negative or NaN");
  FWDECAY_CHECK_MSG(updates_since_compress_ <
                        static_cast<std::size_t>(k_) + 16,
                    "lazy-compression counter at or past its trigger "
                    "(Update() would have compressed)");
  const std::uint64_t max_id = std::uint64_t{2} << universe_bits_;
  double sum = 0.0;
  for (const auto& [id, w] : nodes_) {
    FWDECAY_CHECK_MSG(id >= 1 && id < max_id,
                      "node id outside the implicit tree");
    FWDECAY_CHECK_MSG(!std::isnan(w) && w >= 0.0,
                      "node weight negative or NaN");
    sum += w;
  }
  // Weight conservation: Update/Merge add to a node and the total in
  // lockstep; Compress/ScaleWeights preserve the sum (the latter up to
  // floating-point rounding).
  const double tol = 1e-6 * std::max(1.0, std::max(sum, total_weight_));
  FWDECAY_CHECK_MSG(std::abs(sum - total_weight_) <= tol,
                    "node weights do not sum to TotalWeight()");
}

std::size_t QDigest::MemoryBytes() const {
  // id (8) + weight (8) + hash-table overhead (~16) per node.
  return nodes_.size() * 32;
}

void QDigest::SerializeTo(ByteWriter* writer) const {
  // Tag 0x52 is the v2 frame: v1 (0x51) plus the lazy-compression
  // counter, which engine checkpointing needs — the *timing* of future
  // Compress() calls, not just the node set, determines the digest's
  // exact future state, and recovery must match the uninterrupted run.
  writer->WriteU8(0x52);
  writer->WriteU8(static_cast<std::uint8_t>(universe_bits_));
  writer->WriteDouble(eps_);
  writer->WriteDouble(total_weight_);
  writer->WriteU64(updates_since_compress_);
  writer->WriteU32(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& [id, w] : nodes_) {
    writer->WriteU64(id);
    writer->WriteDouble(w);
  }
}

std::optional<QDigest> QDigest::Deserialize(ByteReader* reader) {
  std::uint8_t tag = 0;
  std::uint8_t bits = 0;
  double eps = 0.0;
  double total = 0.0;
  std::uint64_t since_compress = 0;
  std::uint32_t n = 0;
  if (!reader->ReadU8(&tag) || (tag != 0x51 && tag != 0x52)) {
    return std::nullopt;
  }
  if (!reader->ReadU8(&bits) || bits < 1 || bits > 62) return std::nullopt;
  if (!reader->ReadDouble(&eps) || !(eps > 0.0 && eps < 1.0)) {
    return std::nullopt;
  }
  if (!reader->ReadDouble(&total)) return std::nullopt;
  if (tag == 0x52 && !reader->ReadU64(&since_compress)) return std::nullopt;
  if (!reader->ReadU32(&n)) return std::nullopt;
  // Each node is 16 serialized bytes; a count exceeding the remaining
  // input is corrupt. Checking before reserve() keeps a hostile header
  // from demanding a multi-gigabyte allocation.
  if (n > reader->Remaining() / 16) return std::nullopt;
  QDigest out(bits, eps);
  out.total_weight_ = total;
  out.updates_since_compress_ = static_cast<std::size_t>(since_compress);
  const std::uint64_t max_id = std::uint64_t{2} << bits;
  out.nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    double w = 0.0;
    if (!reader->ReadU64(&id) || !reader->ReadDouble(&w)) {
      return std::nullopt;
    }
    if (id == 0 || id >= max_id || w < 0.0) return std::nullopt;  // corrupt
    out.nodes_[id] += w;
  }
  return out;
}

}  // namespace fwdecay
