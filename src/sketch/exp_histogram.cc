#include "sketch/exp_histogram.h"

#include <cmath>

#include "util/check.h"

namespace fwdecay {

EhCount::EhCount(double eps, double horizon) : eps_(eps), horizon_(horizon) {
  FWDECAY_CHECK_MSG(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  FWDECAY_CHECK(horizon > 0.0);
  // Datar et al.: at most k/2 + 2 buckets of each size, k = ceil(1/eps).
  const auto k = static_cast<std::size_t>(std::ceil(1.0 / eps));
  max_per_size_ = k / 2 + 2;
}

void EhCount::Insert(double ts) {
  FWDECAY_CHECK_MSG(ts >= last_ts_,
                    "EH requires non-decreasing timestamps");
  last_ts_ = ts;
  ++total_count_;
  buckets_.push_front(Bucket{ts, 1});

  // Cascade: whenever a size class overflows, merge its two *oldest*
  // buckets into one of twice the size (keeping the newer timestamp of
  // the two, i.e. the earlier position's ts).
  std::uint64_t size = 1;
  // Scan from the front; buckets of equal size are contiguous because
  // sizes are non-decreasing toward the back.
  std::size_t begin = 0;
  while (true) {
    // Find the run of buckets with this size.
    std::size_t i = begin;
    while (i < buckets_.size() && buckets_[i].size < size) ++i;
    std::size_t run_begin = i;
    while (i < buckets_.size() && buckets_[i].size == size) ++i;
    const std::size_t run_len = i - run_begin;
    if (run_len <= max_per_size_) break;
    // Merge the two oldest of this size (positions i-2 and i-1).
    // Position i-2 is the newer of the pair; the merged bucket keeps its
    // timestamp (the most recent element among the merged contents).
    buckets_[i - 2].size *= 2;
    buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(i - 1));
    begin = i - 2;
    size *= 2;
  }
  Expire(ts);
}

void EhCount::Expire(double now) {
  if (horizon_ == std::numeric_limits<double>::infinity()) return;
  const double cutoff = now - horizon_;
  while (buckets_.size() > 1 && buckets_.back().ts < cutoff) {
    buckets_.pop_back();
  }
}

double EhCount::CountInWindow(double now, double window) const {
  const double cutoff = now - window;
  double count = 0.0;
  std::uint64_t last_size = 0;
  for (const Bucket& b : buckets_) {
    if (b.ts < cutoff) break;
    count += static_cast<double>(b.size);
    last_size = b.size;
  }
  // The oldest contributing bucket may straddle the window boundary; the
  // standard estimator subtracts half of it.
  if (last_size > 1) count -= static_cast<double>(last_size) / 2.0;
  return count;
}

std::size_t EhCount::MemoryBytes() const {
  // ts (8) + size (8) per bucket.
  return buckets_.size() * sizeof(Bucket);
}

void EhCount::CheckInvariants() const {
  std::uint64_t run_size = 0;
  std::size_t run_len = 0;
  std::uint64_t sum = 0;
  double prev_ts = last_ts_;
  for (const Bucket& b : buckets_) {
    FWDECAY_CHECK_MSG(b.size != 0 && (b.size & (b.size - 1)) == 0,
                      "bucket size not a power of two");
    FWDECAY_CHECK_MSG(b.size >= run_size,
                      "bucket sizes decrease toward the back (merge "
                      "cascade relies on contiguous size runs)");
    if (b.size == run_size) {
      ++run_len;
    } else {
      run_size = b.size;
      run_len = 1;
    }
    FWDECAY_CHECK_MSG(run_len <= max_per_size_,
                      "size class holds more than k/2 + 2 buckets "
                      "(cascade failed to merge)");
    FWDECAY_CHECK_MSG(!std::isnan(b.ts) && b.ts <= prev_ts,
                      "bucket timestamps not non-increasing toward the "
                      "back");
    prev_ts = b.ts;
    sum += b.size;
  }
  // Expiry only ever removes buckets, so the bucket mass is the exact
  // arrival count until a finite horizon first drops one.
  if (horizon_ == std::numeric_limits<double>::infinity()) {
    FWDECAY_CHECK_MSG(sum == total_count_,
                      "bucket sizes do not sum to TotalCount()");
  } else {
    FWDECAY_CHECK_MSG(sum <= total_count_,
                      "bucket mass exceeds TotalCount()");
  }
}

EhSum::EhSum(double eps, int value_bits, double horizon) {
  FWDECAY_CHECK_MSG(value_bits >= 1 && value_bits <= 40,
                    "value_bits must be in [1, 40]");
  bit_ehs_.reserve(static_cast<std::size_t>(value_bits));
  for (int b = 0; b < value_bits; ++b) bit_ehs_.emplace_back(eps, horizon);
}

void EhSum::Insert(double ts, std::uint64_t v) {
  FWDECAY_CHECK_MSG(v < (std::uint64_t{1} << bit_ehs_.size()),
                    "value exceeds EhSum value_bits");
  total_sum_ += static_cast<double>(v);
  for (std::size_t b = 0; v != 0; ++b, v >>= 1) {
    if (v & 1) bit_ehs_[b].Insert(ts);
  }
}

double EhSum::SumInWindow(double now, double window) const {
  double sum = 0.0;
  for (std::size_t b = 0; b < bit_ehs_.size(); ++b) {
    sum += std::ldexp(bit_ehs_[b].CountInWindow(now, window),
                      static_cast<int>(b));
  }
  return sum;
}

std::size_t EhSum::BucketCount() const {
  std::size_t n = 0;
  for (const EhCount& eh : bit_ehs_) n += eh.BucketCount();
  return n;
}

std::size_t EhSum::MemoryBytes() const {
  std::size_t n = 0;
  for (const EhCount& eh : bit_ehs_) n += eh.MemoryBytes();
  return n;
}

void EhSum::CheckInvariants() const {
  FWDECAY_CHECK_MSG(!std::isnan(total_sum_) && total_sum_ >= 0.0,
                    "EhSum total negative or NaN");
  double decomposed = 0.0;
  for (std::size_t b = 0; b < bit_ehs_.size(); ++b) {
    bit_ehs_[b].CheckInvariants();
    decomposed +=
        std::ldexp(static_cast<double>(bit_ehs_[b].TotalCount()),
                   static_cast<int>(b));
  }
  // Bit-decomposition identity: every Insert(v) adds v to total_sum_ and
  // one arrival to the EH of each set bit, and expiry never touches the
  // exact side counters.
  const double tol =
      1e-6 * std::max(1.0, std::max(decomposed, total_sum_));
  FWDECAY_CHECK_MSG(std::abs(decomposed - total_sum_) <= tol,
                    "per-bit counts do not recompose to TotalSum()");
}

void EhCount::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(0x45);
  writer->WriteDouble(eps_);
  writer->WriteDouble(horizon_);
  writer->WriteU64(total_count_);
  writer->WriteDouble(last_ts_);
  writer->WriteU32(static_cast<std::uint32_t>(buckets_.size()));
  for (const Bucket& b : buckets_) {
    writer->WriteDouble(b.ts);
    writer->WriteU64(b.size);
  }
}

std::optional<EhCount> EhCount::Deserialize(ByteReader* reader) {
  std::uint8_t tag = 0;
  double eps = 0.0;
  double horizon = 0.0;
  std::uint64_t total = 0;
  double last_ts = 0.0;
  std::uint32_t n = 0;
  if (!reader->ReadU8(&tag) || tag != 0x45) return std::nullopt;
  if (!reader->ReadDouble(&eps) || !(eps > 0.0 && eps <= 1.0)) {
    return std::nullopt;
  }
  if (!reader->ReadDouble(&horizon) || !(horizon > 0.0)) return std::nullopt;
  if (!reader->ReadU64(&total) || !reader->ReadDouble(&last_ts)) {
    return std::nullopt;
  }
  if (!reader->ReadU32(&n)) return std::nullopt;
  // Each bucket is 16 serialized bytes; bound before any allocation.
  if (n > reader->Remaining() / 16) return std::nullopt;
  EhCount out(eps, horizon);
  out.total_count_ = total;
  out.last_ts_ = last_ts;
  double prev_ts = last_ts;
  for (std::uint32_t i = 0; i < n; ++i) {
    Bucket b{0.0, 0};
    if (!reader->ReadDouble(&b.ts) || !reader->ReadU64(&b.size)) {
      return std::nullopt;
    }
    // Invariants: power-of-two sizes, timestamps non-increasing toward
    // the back, nothing newer than last_ts_.
    if (b.size == 0 || (b.size & (b.size - 1)) != 0) return std::nullopt;
    if (!(b.ts <= prev_ts)) return std::nullopt;
    prev_ts = b.ts;
    out.buckets_.push_back(b);
  }
  // Sizes must be non-decreasing toward the back (merge-cascade scan
  // relies on equal sizes being contiguous).
  for (std::size_t i = 1; i < out.buckets_.size(); ++i) {
    if (out.buckets_[i].size < out.buckets_[i - 1].size) return std::nullopt;
  }
  return out;
}

void EhSum::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(0x46);
  writer->WriteDouble(total_sum_);
  writer->WriteU8(static_cast<std::uint8_t>(bit_ehs_.size()));
  for (const EhCount& eh : bit_ehs_) eh.SerializeTo(writer);
}

std::optional<EhSum> EhSum::Deserialize(ByteReader* reader) {
  std::uint8_t tag = 0;
  double total = 0.0;
  std::uint8_t bits = 0;
  if (!reader->ReadU8(&tag) || tag != 0x46) return std::nullopt;
  if (!reader->ReadDouble(&total)) return std::nullopt;
  if (!reader->ReadU8(&bits) || bits < 1 || bits > 40) return std::nullopt;
  EhSum out(0.5, 1);  // placeholder; per-bit EHs replaced below
  out.total_sum_ = total;
  out.bit_ehs_.clear();
  out.bit_ehs_.reserve(bits);
  for (std::uint8_t b = 0; b < bits; ++b) {
    auto eh = EhCount::Deserialize(reader);
    if (!eh) return std::nullopt;
    out.bit_ehs_.push_back(std::move(*eh));
  }
  return out;
}

}  // namespace fwdecay
