#ifndef FWDECAY_SKETCH_QDIGEST_H_
#define FWDECAY_SKETCH_QDIGEST_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"

// Weighted q-digest (Shrivastava et al., SenSys'04) over an integer
// universe [0, U). This is the structure behind forward-decayed quantiles
// (Theorem 3): updates carry the static weight g(t_i - L), queries factor
// out g(t - L), so the quantile answer is unchanged by the normalization.
//
// Guarantees: with compression parameter k, the digest stores O(k) nodes
// and answers rank queries within additive error (log2 U / k) * W, where W
// is the total inserted weight. Choosing k = ceil(log2(U)/eps) yields the
// eps*W rank error of Theorem 3.

namespace fwdecay {

class QDigest {
 public:
  /// Creates a digest over values in [0, 2^universe_bits) with rank error
  /// at most eps * TotalWeight().
  QDigest(int universe_bits, double eps);

  /// Adds `weight` (> 0) at `value` (< 2^universe_bits). Amortized O(1)
  /// map work plus periodic compression.
  void Update(std::uint64_t value, double weight);

  /// Total inserted weight (exact).
  double TotalWeight() const { return total_weight_; }

  /// Returns a value whose rank is within eps*W of phi*W (phi in [0,1]).
  std::uint64_t Quantile(double phi) const;

  /// Estimated weight of items with value <= v, within eps*W additive
  /// error.
  double Rank(std::uint64_t v) const;

  /// Merges another digest with identical universe_bits; error bounds add.
  /// Implements the distributed combination of Section VI-B.
  void Merge(const QDigest& other);

  /// Multiplies every node weight by `factor` > 0 (exponential landmark
  /// rescaling, Section VI-A).
  void ScaleWeights(double factor);

  /// Forces compression to the canonical small size.
  void Compress();

  int universe_bits() const { return universe_bits_; }
  double eps() const { return eps_; }
  std::size_t NodeCount() const { return nodes_.size(); }
  std::size_t MemoryBytes() const;

  /// Serializes the digest (compressed first, to ship minimal bytes).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a digest; nullopt on truncated/corrupt input.
  static std::optional<QDigest> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): node ids inside the implicit
  /// tree [1, 2^(bits+1)), non-negative finite weights, the lazy
  /// compression counter below its trigger, and weight conservation
  /// (Σ node weights == TotalWeight()). Catches corruption Deserialize()
  /// deliberately accepts — e.g. an inflated total_weight_, which the
  /// frame carries separately from the nodes. Aborts via FWDECAY_CHECK
  /// on violation.
  void CheckInvariants() const;

 private:
  // Node ids form an implicit binary tree: root = 1; children of x are 2x
  // and 2x+1; leaves are U + value. Depth(x) = floor(log2 x).
  std::uint64_t LeafId(std::uint64_t value) const {
    return (std::uint64_t{1} << universe_bits_) + value;
  }
  // Inclusive upper end of the value range covered by node `id`.
  std::uint64_t RangeHi(std::uint64_t id) const;
  std::uint64_t RangeLo(std::uint64_t id) const;

  int universe_bits_;
  double eps_;
  double k_;  // compression parameter: node threshold is total/k
  double total_weight_ = 0.0;
  std::size_t updates_since_compress_ = 0;
  std::unordered_map<std::uint64_t, double> nodes_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_QDIGEST_H_
