#include "sketch/backward_sum.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fwdecay {

double CombineWindowQueries(double horizon, const BackwardDecayFn& f,
                            int grid_size,
                            const std::function<double(double)>& window_query) {
  FWDECAY_CHECK_MSG(grid_size >= 2, "grid must have at least two ages");
  horizon = std::max(horizon, 1e-9);
  // Geometric age grid from a small fraction of the horizon up to the
  // horizon itself; items younger than the first knot get full weight.
  const double a_min = horizon * 1e-4;
  const double ratio =
      std::pow(horizon / a_min, 1.0 / static_cast<double>(grid_size - 1));
  double result = f(a_min) * window_query(a_min);
  double prev_age = a_min;
  for (int j = 1; j < grid_size; ++j) {
    const double age = a_min * std::pow(ratio, j);
    const double delta = window_query(age) - window_query(prev_age);
    if (delta > 0.0) result += f(age) * delta;
    prev_age = age;
  }
  return result;
}

BackwardDecayedAggregator::BackwardDecayedAggregator(double eps,
                                                     int value_bits,
                                                     int grid_size)
    : grid_size_(grid_size), count_eh_(eps), sum_eh_(eps, value_bits) {
  FWDECAY_CHECK_MSG(grid_size >= 2, "grid must have at least two ages");
}

void BackwardDecayedAggregator::Insert(double ts, std::uint64_t value) {
  if (!has_data_) {
    first_ts_ = ts;
    has_data_ = true;
  }
  count_eh_.Insert(ts);
  sum_eh_.Insert(ts, value);
}

double BackwardDecayedAggregator::DecayedCount(double now,
                                               const BackwardDecayFn& f) const {
  if (!has_data_) return 0.0;
  return CombineWindowQueries(now - first_ts_, f, grid_size_,
                              [&](double window) {
                                return count_eh_.CountInWindow(now, window);
                              });
}

double BackwardDecayedAggregator::DecayedSum(double now,
                                             const BackwardDecayFn& f) const {
  if (!has_data_) return 0.0;
  return CombineWindowQueries(now - first_ts_, f, grid_size_,
                              [&](double window) {
                                return sum_eh_.SumInWindow(now, window);
                              });
}

void BackwardDecayedAggregator::CheckInvariants() const {
  FWDECAY_CHECK_MSG(grid_size_ >= 2, "grid must have at least two ages");
  count_eh_.CheckInvariants();
  sum_eh_.CheckInvariants();
  if (!has_data_) {
    FWDECAY_CHECK_MSG(count_eh_.TotalCount() == 0,
                      "aggregator holds arrivals but has_data_ is false");
  }
  // Every Insert() feeds the count EH once and sets at most value_bits
  // bits in the sum EH, so the sum EH's total mass is bounded by the
  // arrival count times the value range.
  const double max_value = std::ldexp(1.0, sum_eh_.value_bits()) - 1.0;
  FWDECAY_CHECK_MSG(
      sum_eh_.TotalSum() <=
          static_cast<double>(count_eh_.TotalCount()) * max_value,
      "sum EH mass exceeds what the arrival count allows");
}

void BackwardDecayedAggregator::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(0x42);
  writer->WriteU32(static_cast<std::uint32_t>(grid_size_));
  writer->WriteDouble(first_ts_);
  writer->WriteU8(has_data_ ? 1 : 0);
  count_eh_.SerializeTo(writer);
  sum_eh_.SerializeTo(writer);
}

std::optional<BackwardDecayedAggregator> BackwardDecayedAggregator::Deserialize(
    ByteReader* reader) {
  std::uint8_t tag = 0;
  std::uint32_t grid = 0;
  double first_ts = 0.0;
  std::uint8_t has_data = 0;
  if (!reader->ReadU8(&tag) || tag != 0x42) return std::nullopt;
  if (!reader->ReadU32(&grid) || grid < 2 || grid > 1u << 20) {
    return std::nullopt;
  }
  if (!reader->ReadDouble(&first_ts) || !reader->ReadU8(&has_data) ||
      has_data > 1) {
    return std::nullopt;
  }
  auto count_eh = EhCount::Deserialize(reader);
  if (!count_eh) return std::nullopt;
  auto sum_eh = EhSum::Deserialize(reader);
  if (!sum_eh) return std::nullopt;
  BackwardDecayedAggregator out(0.5, 1, static_cast<int>(grid));
  out.first_ts_ = first_ts;
  out.has_data_ = has_data != 0;
  out.count_eh_ = std::move(*count_eh);
  out.sum_eh_ = std::move(*sum_eh);
  return out;
}

}  // namespace fwdecay
