#ifndef FWDECAY_SKETCH_SLIDING_QUANTILES_H_
#define FWDECAY_SKETCH_SLIDING_QUANTILES_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "sketch/qdigest.h"

// Sliding-window / backward-decayed quantiles — the baseline class the
// paper's related work surveys for holistic aggregates under backward
// decay (Arasu–Manku style window quantiles, extended to arbitrary decay
// via the Cohen–Strauss combination). Reconstruction: the stream is cut
// into fixed panes, each summarized by a q-digest; a window query merges
// the panes it covers, and a backward-decayed rank weighs each pane by
// f(pane age). As with the sliding-window heavy hitters, the point is
// the cost: state grows with the number of panes (i.e. with stream
// span), a logarithmic-plus factor above the single q-digest forward
// decay needs (Theorem 3).

namespace fwdecay {

class SlidingWindowQuantiles {
 public:
  /// `eps` is the per-pane rank error; `pane_seconds` the pane width;
  /// values are drawn from [0, 2^universe_bits).
  SlidingWindowQuantiles(double eps, double pane_seconds, int universe_bits);

  /// Records value `v` at timestamp `ts` (non-decreasing).
  void Update(double ts, std::uint64_t v);

  /// The phi-quantile restricted to the window (now - window, now].
  std::uint64_t QueryWindowQuantile(double now, double window,
                                    double phi) const;

  /// The phi-quantile under an arbitrary backward decay f(age) supplied
  /// at query time (binary search over the value domain against the
  /// pane-weighted decayed rank).
  std::uint64_t QueryDecayedQuantile(double now,
                                     const std::function<double(double)>& f,
                                     double phi) const;

  std::size_t PaneCount() const { return panes_.size(); }
  std::size_t MemoryBytes() const;
  double TotalWeight() const;

 private:
  struct Pane {
    std::int64_t index;  // floor(ts / pane_seconds)
    QDigest digest;
  };

  // Decayed rank of v and decayed total, as (rank, total).
  std::pair<double, double> DecayedRank(
      double now, const std::function<double(double)>& f,
      std::uint64_t v) const;

  double eps_;
  double pane_seconds_;
  int universe_bits_;
  std::deque<Pane> panes_;  // oldest first
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_SLIDING_QUANTILES_H_
