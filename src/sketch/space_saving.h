#ifndef FWDECAY_SKETCH_SPACE_SAVING_H_
#define FWDECAY_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"

// SpaceSaving heavy-hitter sketches (Metwally, Agrawal, El Abbadi, ICDT'05).
//
// Two variants, matching the paper's experimental setup (Section VIII):
//  * WeightedSpaceSaving — arbitrary positive real increments, O(log k)
//    per update via an intrusive min-heap. This is the workhorse behind
//    forward-decayed heavy hitters (Theorem 2): the increment for item i
//    is the static weight g(t_i - L).
//  * UnarySpaceSaving — optimized for +1 increments using the
//    stream-summary bucket list, O(1) worst-case per update. This is the
//    paper's "Unary HH" baseline for undecayed queries.
//
// Guarantee (both): with k counters, every reported estimate e(v)
// satisfies true(v) <= e(v) <= true(v) + W/k where W is the total inserted
// weight; choosing k = ceil(1/eps) gives the eps*W error of Theorem 2.

namespace fwdecay {

/// One reported heavy-hitter candidate.
struct HeavyHitter {
  std::uint64_t key = 0;
  /// Estimated (upper bound) weight of the key.
  double estimate = 0.0;
  /// Maximum possible overestimation; estimate - error is a lower bound.
  double error = 0.0;
};

/// SpaceSaving with real-valued weighted updates.
class WeightedSpaceSaving {
 public:
  /// Creates a sketch with `capacity` counters (capacity >= 1).
  /// For an eps-guarantee use capacity = ceil(1/eps).
  explicit WeightedSpaceSaving(std::size_t capacity);

  /// Adds `weight` (> 0) to `key`'s count.
  void Update(std::uint64_t key, double weight);

  /// Total weight inserted so far (exact).
  double TotalWeight() const { return total_weight_; }

  /// Returns every key whose estimated weight is >= phi * TotalWeight().
  /// Guaranteed to contain all keys with true weight >= phi * W and no key
  /// with true weight < (phi - 1/capacity) * W.
  std::vector<HeavyHitter> Query(double phi) const;

  /// Point estimate (upper bound) for one key; 0 if untracked.
  double Estimate(std::uint64_t key) const;

  /// Merges another sketch (same capacity required). Implements the
  /// distributed setting of Section VI-B: the merged sketch summarizes the
  /// union of the inputs with error bounds adding.
  void Merge(const WeightedSpaceSaving& other);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return counters_.size(); }

  /// Bytes of state, counted the way the paper's Figure 4(c,d) does:
  /// per-counter key + count + error storage.
  std::size_t MemoryBytes() const;

  /// Multiplies every counter (and the running total) by `factor` > 0.
  /// Used by the exponential landmark-rescaling of Section VI-A.
  void ScaleWeights(double factor);

  /// Serializes the full sketch state (Section VI-B: ship summaries
  /// between sites, then Merge()).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a sketch; nullopt on truncated/corrupt input.
  static std::optional<WeightedSpaceSaving> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): heap/index/back-pointer
  /// consistency, min-heap order, error <= count per counter, and weight
  /// conservation (Σ counts == TotalWeight()). Catches corruption that
  /// Deserialize() deliberately does not re-derive — e.g. an inflated
  /// error or a forged total. Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  struct Counter {
    std::uint64_t key;
    double count;
    double error;
    std::size_t heap_pos;  // index into heap_
  };

  // Min-heap maintenance on Counter::count.
  void SiftUp(std::size_t heap_index);
  void SiftDown(std::size_t heap_index);
  bool HeapLess(std::size_t a, std::size_t b) const;
  void HeapSwap(std::size_t a, std::size_t b);

  std::size_t capacity_;
  double total_weight_ = 0.0;
  std::vector<Counter> counters_;
  std::vector<std::size_t> heap_;  // heap of counter indices, min count root
  std::unordered_map<std::uint64_t, std::size_t> index_;  // key -> counter
};

/// SpaceSaving specialized for unit increments with O(1) updates using the
/// stream-summary structure (buckets of equal count in a sorted list).
class UnarySpaceSaving {
 public:
  explicit UnarySpaceSaving(std::size_t capacity);

  /// Counts one occurrence of `key`.
  void Update(std::uint64_t key);

  /// Total number of updates.
  std::uint64_t TotalCount() const { return total_count_; }

  /// Returns keys with estimated count >= phi * TotalCount().
  std::vector<HeavyHitter> Query(double phi) const;

  /// Point estimate (upper bound) for one key; 0 if untracked.
  std::uint64_t Estimate(std::uint64_t key) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return num_counters_; }
  std::size_t MemoryBytes() const;

  /// Serializes the exact structure — bucket list, link order, free
  /// list — so a restored sketch evolves identically to the original
  /// (engine checkpointing; the stream-summary replacement rule is
  /// sensitive to sibling order within the minimum bucket).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a sketch; nullopt on truncated/corrupt input.
  static std::optional<UnarySpaceSaving> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): the stream-summary discipline —
  /// strictly ascending bucket counts from min_bucket_, mutually
  /// consistent doubly-linked bucket and counter chains, every active
  /// counter reachable exactly once with error < its bucket count, free
  /// and live bucket slots partitioning the arena, and count
  /// conservation (Σ counter counts == TotalCount()). Aborts via
  /// FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // Counters and buckets live in index-linked free lists so updates do no
  // allocation after the structure fills.
  struct Counter {
    std::uint64_t key;
    std::uint64_t error;
    std::uint32_t bucket;
    std::uint32_t prev, next;  // siblings within the bucket
  };
  struct Bucket {
    std::uint64_t count;
    std::uint32_t head;        // first counter in this bucket
    std::uint32_t prev, next;  // neighbouring buckets (ascending count)
  };

  void DetachCounter(std::uint32_t c);
  void AttachCounter(std::uint32_t c, std::uint32_t bucket);
  std::uint32_t AllocBucket(std::uint64_t count);
  void FreeBucket(std::uint32_t b);
  // Moves counter c from its bucket to one with count+1 (creating it if
  // needed), preserving the ascending bucket order.
  void IncrementCounter(std::uint32_t c);

  std::size_t capacity_;
  std::uint64_t total_count_ = 0;
  std::size_t num_counters_ = 0;
  std::vector<Counter> counters_;
  std::vector<Bucket> buckets_;
  std::uint32_t min_bucket_ = kNil;   // bucket with the smallest count
  std::uint32_t free_bucket_ = kNil;  // free list of bucket slots
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_SPACE_SAVING_H_
