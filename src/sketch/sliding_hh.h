#ifndef FWDECAY_SKETCH_SLIDING_HH_H_
#define FWDECAY_SKETCH_SLIDING_HH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sketch/backward_sum.h"
#include "sketch/exp_histogram.h"
#include "sketch/space_saving.h"

// Sliding-window / backward-decayed heavy hitters — the baseline the paper
// compares against in Figures 4 and 5 (the out-of-order decayed-HH method
// of Cormode, Korn, Tirthapura, PODS'08).
//
// Reconstruction (see DESIGN.md): each tracked key carries its own
// exponential histogram of arrival times, so any window count — and via
// the Cohen–Strauss combination, any backward-decayed count — can be
// answered per key at query time. Keys are pruned only when their total
// count is provably below the reporting threshold. The consequences the
// paper measures hold by construction: per-tuple cost is an EH cascade
// plus amortized pruning; the state retains a large fraction of the
// distinct keys and does *not* shrink as eps grows, in sharp contrast to
// the O(1/eps) counters of weighted SpaceSaving.

namespace fwdecay {

class SlidingWindowHeavyHitters {
 public:
  /// `eps` is the count accuracy (per-key EH error and pruning slack);
  /// `grid_size` is the age discretization used for decayed queries.
  explicit SlidingWindowHeavyHitters(double eps, int grid_size = 32);

  /// Records an arrival of `key` at timestamp `ts` (non-decreasing).
  void Update(double ts, std::uint64_t key);

  /// Heavy hitters within the sliding window (now - window, now]:
  /// all keys whose window count is >= phi * total window count.
  std::vector<HeavyHitter> QueryWindow(double now, double window,
                                       double phi) const;

  /// Heavy hitters under an arbitrary *backward* decay function f
  /// specified at query time (the generality this baseline buys with its
  /// large state): keys with decayed count >= phi * total decayed count.
  std::vector<HeavyHitter> QueryDecayed(double now, const BackwardDecayFn& f,
                                        double phi) const;

  std::size_t TrackedKeys() const { return per_key_.size(); }
  std::size_t MemoryBytes() const;
  std::uint64_t TotalCount() const { return total_.TotalCount(); }

  /// Serializes the exact state (per-key EHs emitted in ascending key
  /// order so snapshots of equal states are byte-identical).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a tracker; nullopt on truncated/corrupt input.
  static std::optional<SlidingWindowHeavyHitters> Deserialize(
      ByteReader* reader);

  /// Representation audit (DESIGN.md §7): audits the total EH and every
  /// per-key EH, and checks the cross-structure accounting — each
  /// tracked key has a non-empty histogram, per-key counts sum to at
  /// most the total (pruning only removes whole keys), the timestamp
  /// span is ordered, and the amortized-prune counter is below its
  /// trigger. Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  void MaybePrune();

  double eps_;
  int grid_size_;
  double first_ts_ = 0.0;
  double last_ts_ = 0.0;
  bool has_data_ = false;
  std::uint64_t updates_since_prune_ = 0;
  EhCount total_;  // total arrivals, for thresholds
  std::unordered_map<std::uint64_t, EhCount> per_key_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_SLIDING_HH_H_
