#ifndef FWDECAY_SKETCH_BACKWARD_SUM_H_
#define FWDECAY_SKETCH_BACKWARD_SUM_H_

#include <cstdint>
#include <functional>

#include "sketch/exp_histogram.h"

// Backward-decayed sums and counts via the Cohen–Strauss reduction
// (PODS'03), as used for the paper's Figure 2 baseline: any backward decay
// function f(age), specified at query time, can be approximated by a
// telescoping combination of scaled sliding-window queries over a single
// exponential histogram:
//
//   sum_i f(t - t_i) v_i  ≈  Σ_j [f(a_j) - f(a_{j+1})] * WindowSum(a_j..)
//
// evaluated on a geometric grid of ages a_0 = 0 < a_1 < ... < a_m. The
// per-tuple cost is the EH insertion cascade; the per-group state is the
// EH buckets — both substantially heavier than forward decay's single
// running float, which is exactly the contrast the paper measures.

namespace fwdecay {

/// A backward decay function: maps an age a >= 0 to a weight in [0, 1],
/// monotone non-increasing, f(0) = 1.
using BackwardDecayFn = std::function<double(double)>;

/// Evaluates the Cohen–Strauss telescoped combination
///   Σ_j f(a_j) * (W(a_j) - W(a_{j-1}))
/// over a geometric grid of `grid_size` ages spanning (0, horizon], where
/// `window_query(a)` returns the window aggregate of items with age <= a.
/// Shared by the decayed-sum baseline and the sliding-window HH baseline.
double CombineWindowQueries(double horizon, const BackwardDecayFn& f,
                            int grid_size,
                            const std::function<double(double)>& window_query);

/// Approximates backward-decayed count and sum with one EhCount + EhSum.
class BackwardDecayedAggregator {
 public:
  /// `eps` is the EH relative error; `value_bits` bounds the inserted
  /// values; `grid_size` is the number of window queries per decayed
  /// query (the discretization of the Cohen–Strauss integral).
  BackwardDecayedAggregator(double eps, int value_bits, int grid_size = 48);

  /// Records an arrival (timestamps must be non-decreasing).
  void Insert(double ts, std::uint64_t value);

  /// Approximate decayed count at time `now` under decay f.
  double DecayedCount(double now, const BackwardDecayFn& f) const;

  /// Approximate decayed sum at time `now` under decay f.
  double DecayedSum(double now, const BackwardDecayFn& f) const;

  std::size_t MemoryBytes() const {
    return count_eh_.MemoryBytes() + sum_eh_.MemoryBytes();
  }

  std::uint64_t TotalCount() const { return count_eh_.TotalCount(); }

  /// Serializes the exact state of both EHs.
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs an aggregator; nullopt on truncated/corrupt input.
  static std::optional<BackwardDecayedAggregator> Deserialize(
      ByteReader* reader);

  /// Representation audit (DESIGN.md §7): audits both underlying EHs and
  /// checks the cross-structure accounting — one count arrival per
  /// Insert() (so the sum EH's per-bit arrivals never outnumber
  /// value_bits * count) and an empty structure when has_data_ is false.
  /// Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  int grid_size_;
  double first_ts_ = 0.0;
  bool has_data_ = false;
  EhCount count_eh_;
  EhSum sum_eh_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_BACKWARD_SUM_H_
