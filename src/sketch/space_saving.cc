#include "sketch/space_saving.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fwdecay {

// ---------------------------------------------------------------------------
// WeightedSpaceSaving
// ---------------------------------------------------------------------------

WeightedSpaceSaving::WeightedSpaceSaving(std::size_t capacity)
    : capacity_(capacity) {
  FWDECAY_CHECK_MSG(capacity >= 1, "SpaceSaving needs at least one counter");
  counters_.reserve(capacity);
  heap_.reserve(capacity);
  index_.reserve(capacity * 2);
}

bool WeightedSpaceSaving::HeapLess(std::size_t a, std::size_t b) const {
  return counters_[heap_[a]].count < counters_[heap_[b]].count;
}

void WeightedSpaceSaving::HeapSwap(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  counters_[heap_[a]].heap_pos = a;
  counters_[heap_[b]].heap_pos = b;
}

void WeightedSpaceSaving::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!HeapLess(i, parent)) break;
    HeapSwap(i, parent);
    i = parent;
  }
}

void WeightedSpaceSaving::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && HeapLess(l, smallest)) smallest = l;
    if (r < n && HeapLess(r, smallest)) smallest = r;
    if (smallest == i) break;
    HeapSwap(i, smallest);
    i = smallest;
  }
}

void WeightedSpaceSaving::Update(std::uint64_t key, double weight) {
  FWDECAY_DCHECK(weight > 0.0);
  total_weight_ += weight;
  auto it = index_.find(key);
  if (it != index_.end()) {
    Counter& c = counters_[it->second];
    c.count += weight;
    SiftDown(c.heap_pos);  // count only grew; heap property below may break
    return;
  }
  if (counters_.size() < capacity_) {
    const std::size_t idx = counters_.size();
    counters_.push_back(Counter{key, weight, 0.0, heap_.size()});
    heap_.push_back(idx);
    SiftUp(counters_[idx].heap_pos);
    index_.emplace(key, idx);
    return;
  }
  // Evict the minimum-count counter: the newcomer inherits its count as
  // error, per the SpaceSaving replacement rule.
  const std::size_t idx = heap_[0];
  Counter& c = counters_[idx];
  index_.erase(c.key);
  index_.emplace(key, idx);
  c.error = c.count;
  c.count += weight;
  c.key = key;
  SiftDown(c.heap_pos);
}

std::vector<HeavyHitter> WeightedSpaceSaving::Query(double phi) const {
  std::vector<HeavyHitter> out;
  const double threshold = phi * total_weight_;
  for (const Counter& c : counters_) {
    if (c.count >= threshold) {
      out.push_back(HeavyHitter{c.key, c.count, c.error});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

double WeightedSpaceSaving::Estimate(std::uint64_t key) const {
  auto it = index_.find(key);
  return it == index_.end() ? 0.0 : counters_[it->second].count;
}

void WeightedSpaceSaving::Merge(const WeightedSpaceSaving& other) {
  // Feeding the other sketch's counters as weighted updates preserves the
  // combined guarantee: estimates remain upper bounds and the total error
  // is at most the sum of the two sketches' errors.
  for (const Counter& c : other.counters_) {
    Update(c.key, c.count);
  }
  total_weight_ += other.total_weight_;
  // Update() above already added the counter weights to total_weight_;
  // correct it so the total equals the true combined weight.
  double counted = 0.0;
  for (const Counter& c : other.counters_) counted += c.count;
  total_weight_ -= counted;
}

void WeightedSpaceSaving::CheckInvariants() const {
  const std::size_t n = counters_.size();
  FWDECAY_CHECK_MSG(n <= capacity_, "SpaceSaving holds more counters than "
                                    "its capacity");
  FWDECAY_CHECK_MSG(heap_.size() == n, "heap and counter array sizes differ");
  FWDECAY_CHECK_MSG(index_.size() == n, "index and counter array sizes "
                                        "differ");
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Counter& c = counters_[i];
    FWDECAY_CHECK_MSG(!std::isnan(c.count) && !std::isnan(c.error),
                      "counter count/error is NaN");
    FWDECAY_CHECK_MSG(c.count >= 0.0 && c.error >= 0.0,
                      "counter count/error is negative");
    FWDECAY_CHECK_MSG(c.error <= c.count,
                      "counter error exceeds its count (estimate would "
                      "lower-bound below zero)");
    // heap_pos back-pointers: together with the size equality above this
    // proves heap_ is exactly a permutation of the counter indices.
    FWDECAY_CHECK_MSG(c.heap_pos < n && heap_[c.heap_pos] == i,
                      "heap back-pointer diverged from the heap array");
    auto it = index_.find(c.key);
    FWDECAY_CHECK_MSG(it != index_.end() && it->second == i,
                      "index entry missing or pointing at another counter");
    sum += c.count;
  }
  for (std::size_t i = 1; i < n; ++i) {
    FWDECAY_CHECK_MSG(!HeapLess(i, (i - 1) / 2),
                      "min-heap order violated (eviction would pick a "
                      "non-minimal victim)");
  }
  // Weight conservation: every update adds its weight to exactly one
  // counter and to the running total, and eviction inherits the victim's
  // count — so the counter counts always sum to TotalWeight() (up to
  // floating-point accumulation order).
  const double tol = 1e-6 * std::max(1.0, std::max(sum, total_weight_));
  FWDECAY_CHECK_MSG(std::abs(sum - total_weight_) <= tol,
                    "counter counts do not sum to TotalWeight()");
}

std::size_t WeightedSpaceSaving::MemoryBytes() const {
  // key (8) + count (8) + error (8) + heap bookkeeping (8) per counter,
  // plus the hash index entry (~16).
  return counters_.size() * (sizeof(Counter) + 16);
}

void WeightedSpaceSaving::ScaleWeights(double factor) {
  FWDECAY_CHECK(factor > 0.0);
  for (Counter& c : counters_) {
    c.count *= factor;
    c.error *= factor;
  }
  total_weight_ *= factor;
  // Scaling by a positive constant preserves the heap order.
}

namespace {
constexpr std::uint8_t kWeightedSsTag = 0x53;  // 'S'
// v1: counters only; the reader re-heapifies. v2 (current) appends the
// exact heap permutation: under tied counts the evicted key depends on
// the heap's array layout, and engine checkpoint recovery must
// reproduce the uninterrupted run bit-for-bit, not just up to ties.
constexpr std::uint8_t kWeightedSsVersion = 2;
}  // namespace

void WeightedSpaceSaving::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(kWeightedSsTag);
  writer->WriteU8(kWeightedSsVersion);
  writer->WriteU64(capacity_);
  writer->WriteDouble(total_weight_);
  writer->WriteU32(static_cast<std::uint32_t>(counters_.size()));
  for (const Counter& c : counters_) {
    writer->WriteU64(c.key);
    writer->WriteDouble(c.count);
    writer->WriteDouble(c.error);
  }
  for (std::size_t idx : heap_) {
    writer->WriteU32(static_cast<std::uint32_t>(idx));
  }
}

std::optional<WeightedSpaceSaving> WeightedSpaceSaving::Deserialize(
    ByteReader* reader) {
  std::uint8_t tag = 0;
  std::uint8_t version = 0;
  std::uint64_t capacity = 0;
  double total = 0.0;
  std::uint32_t n = 0;
  if (!reader->ReadU8(&tag) || tag != kWeightedSsTag) return std::nullopt;
  if (!reader->ReadU8(&version) || version < 1 ||
      version > kWeightedSsVersion) {
    return std::nullopt;
  }
  if (!reader->ReadU64(&capacity) || capacity == 0) return std::nullopt;
  // The constructor reserves `capacity` slots up front; cap it (64M
  // counters ≈ 2 GiB) so a corrupt header can't demand absurd memory,
  // and bound the counter count by the bytes actually present (24 per
  // counter) before anything is allocated for them.
  if (capacity > (std::uint64_t{1} << 26)) return std::nullopt;
  if (!reader->ReadDouble(&total)) return std::nullopt;
  if (!reader->ReadU32(&n) || n > capacity) return std::nullopt;
  if (n > reader->Remaining() / 24) return std::nullopt;

  WeightedSpaceSaving out(static_cast<std::size_t>(capacity));
  out.total_weight_ = total;
  for (std::uint32_t i = 0; i < n; ++i) {
    Counter c{0, 0.0, 0.0, i};
    if (!reader->ReadU64(&c.key) || !reader->ReadDouble(&c.count) ||
        !reader->ReadDouble(&c.error)) {
      return std::nullopt;
    }
    if (out.index_.contains(c.key)) return std::nullopt;  // corrupt
    out.index_.emplace(c.key, out.counters_.size());
    out.heap_.push_back(out.counters_.size());
    out.counters_.push_back(c);
  }
  if (version >= 2) {
    // Restore the serialized heap permutation exactly, validating that
    // it is a permutation of [0, n) and satisfies the heap property.
    std::vector<bool> used(n, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t idx = 0;
      if (!reader->ReadU32(&idx) || idx >= n || used[idx]) {
        return std::nullopt;
      }
      used[idx] = true;
      out.heap_[i] = idx;
      out.counters_[idx].heap_pos = i;
    }
    for (std::uint32_t i = 1; i < n; ++i) {
      if (out.HeapLess(i, (i - 1) / 2)) return std::nullopt;  // corrupt
    }
  } else {
    // Heapify (bottom-up) to restore the min-heap invariant.
    for (std::size_t i = out.heap_.size() / 2; i-- > 0;) {
      out.SiftDown(i);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// UnarySpaceSaving serialization
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint8_t kUnarySsTag = 0x55;  // 'U'
constexpr std::uint8_t kUnarySsVersion = 1;

bool ValidLink(std::uint32_t link, std::size_t size) {
  return link == 0xffffffffu || link < size;
}
}  // namespace

void UnarySpaceSaving::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(kUnarySsTag);
  writer->WriteU8(kUnarySsVersion);
  writer->WriteU64(capacity_);
  writer->WriteU64(total_count_);
  writer->WriteU32(static_cast<std::uint32_t>(num_counters_));
  writer->WriteU32(static_cast<std::uint32_t>(buckets_.size()));
  writer->WriteU32(min_bucket_);
  writer->WriteU32(free_bucket_);
  for (std::size_t c = 0; c < num_counters_; ++c) {
    const Counter& cn = counters_[c];
    writer->WriteU64(cn.key);
    writer->WriteU64(cn.error);
    writer->WriteU32(cn.bucket);
    writer->WriteU32(cn.prev);
    writer->WriteU32(cn.next);
  }
  for (const Bucket& b : buckets_) {
    writer->WriteU64(b.count);
    writer->WriteU32(b.head);
    writer->WriteU32(b.prev);
    writer->WriteU32(b.next);
  }
}

std::optional<UnarySpaceSaving> UnarySpaceSaving::Deserialize(
    ByteReader* reader) {
  std::uint8_t tag = 0;
  std::uint8_t version = 0;
  std::uint64_t capacity = 0;
  std::uint64_t total = 0;
  std::uint32_t n = 0;
  std::uint32_t nbuckets = 0;
  std::uint32_t min_bucket = 0;
  std::uint32_t free_bucket = 0;
  if (!reader->ReadU8(&tag) || tag != kUnarySsTag) return std::nullopt;
  if (!reader->ReadU8(&version) || version != kUnarySsVersion) {
    return std::nullopt;
  }
  // capacity sizes the counters_ array up front; same 64M cap as the
  // weighted variant so a corrupt header cannot demand absurd memory.
  if (!reader->ReadU64(&capacity) || capacity == 0 ||
      capacity > (std::uint64_t{1} << 26)) {
    return std::nullopt;
  }
  if (!reader->ReadU64(&total)) return std::nullopt;
  if (!reader->ReadU32(&n) || n > capacity) return std::nullopt;
  // Counters are 28 serialized bytes, buckets 20: bound both counts by
  // the bytes actually present before allocating.
  if (n > reader->Remaining() / 28) return std::nullopt;
  if (!reader->ReadU32(&nbuckets) || nbuckets > capacity + 1 ||
      nbuckets > reader->Remaining() / 20) {
    return std::nullopt;
  }
  if (!reader->ReadU32(&min_bucket) || !ValidLink(min_bucket, nbuckets) ||
      !reader->ReadU32(&free_bucket) || !ValidLink(free_bucket, nbuckets)) {
    return std::nullopt;
  }

  UnarySpaceSaving out(static_cast<std::size_t>(capacity));
  out.total_count_ = total;
  out.num_counters_ = n;
  out.min_bucket_ = min_bucket;
  out.free_bucket_ = free_bucket;
  for (std::uint32_t c = 0; c < n; ++c) {
    Counter& cn = out.counters_[c];
    if (!reader->ReadU64(&cn.key) || !reader->ReadU64(&cn.error) ||
        !reader->ReadU32(&cn.bucket) || !reader->ReadU32(&cn.prev) ||
        !reader->ReadU32(&cn.next)) {
      return std::nullopt;
    }
    if (cn.bucket >= nbuckets || !ValidLink(cn.prev, n) ||
        !ValidLink(cn.next, n)) {
      return std::nullopt;
    }
    if (!out.index_.emplace(cn.key, c).second) return std::nullopt;
  }
  out.buckets_.resize(nbuckets);
  for (std::uint32_t b = 0; b < nbuckets; ++b) {
    Bucket& bk = out.buckets_[b];
    if (!reader->ReadU64(&bk.count) || !reader->ReadU32(&bk.head) ||
        !reader->ReadU32(&bk.prev) || !reader->ReadU32(&bk.next)) {
      return std::nullopt;
    }
    if (!ValidLink(bk.head, n) || !ValidLink(bk.prev, nbuckets) ||
        !ValidLink(bk.next, nbuckets)) {
      return std::nullopt;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// UnarySpaceSaving
// ---------------------------------------------------------------------------

UnarySpaceSaving::UnarySpaceSaving(std::size_t capacity)
    : capacity_(capacity) {
  FWDECAY_CHECK_MSG(capacity >= 1, "SpaceSaving needs at least one counter");
  counters_.resize(capacity);
  buckets_.reserve(capacity + 1);
  index_.reserve(capacity * 2);
}

std::uint32_t UnarySpaceSaving::AllocBucket(std::uint64_t count) {
  std::uint32_t b;
  if (free_bucket_ != kNil) {
    b = free_bucket_;
    free_bucket_ = buckets_[b].next;
  } else {
    b = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[b] = Bucket{count, kNil, kNil, kNil};
  return b;
}

void UnarySpaceSaving::FreeBucket(std::uint32_t b) {
  Bucket& bk = buckets_[b];
  if (bk.prev != kNil) buckets_[bk.prev].next = bk.next;
  if (bk.next != kNil) buckets_[bk.next].prev = bk.prev;
  if (min_bucket_ == b) min_bucket_ = bk.next;
  bk.next = free_bucket_;
  free_bucket_ = b;
}

void UnarySpaceSaving::DetachCounter(std::uint32_t c) {
  Counter& cn = counters_[c];
  Bucket& bk = buckets_[cn.bucket];
  if (cn.prev != kNil) counters_[cn.prev].next = cn.next;
  if (cn.next != kNil) counters_[cn.next].prev = cn.prev;
  if (bk.head == c) bk.head = cn.next;
}

void UnarySpaceSaving::AttachCounter(std::uint32_t c, std::uint32_t bucket) {
  Counter& cn = counters_[c];
  Bucket& bk = buckets_[bucket];
  cn.bucket = bucket;
  cn.prev = kNil;
  cn.next = bk.head;
  if (bk.head != kNil) counters_[bk.head].prev = c;
  bk.head = c;
}

void UnarySpaceSaving::IncrementCounter(std::uint32_t c) {
  const std::uint32_t old_bucket = counters_[c].bucket;
  const std::uint64_t new_count = buckets_[old_bucket].count + 1;
  const std::uint32_t next_bucket = buckets_[old_bucket].next;

  DetachCounter(c);
  std::uint32_t target;
  if (next_bucket != kNil && buckets_[next_bucket].count == new_count) {
    target = next_bucket;
  } else {
    // Insert a fresh bucket between old_bucket and next_bucket.
    target = AllocBucket(new_count);
    buckets_[target].prev = old_bucket;
    buckets_[target].next = next_bucket;
    buckets_[old_bucket].next = target;
    if (next_bucket != kNil) buckets_[next_bucket].prev = target;
  }
  AttachCounter(c, target);
  if (buckets_[old_bucket].head == kNil) FreeBucket(old_bucket);
}

void UnarySpaceSaving::Update(std::uint64_t key) {
  ++total_count_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    IncrementCounter(it->second);
    return;
  }
  if (num_counters_ < capacity_) {
    const auto c = static_cast<std::uint32_t>(num_counters_++);
    counters_[c] = Counter{key, 0, kNil, kNil, kNil};
    if (min_bucket_ == kNil || buckets_[min_bucket_].count != 1) {
      const std::uint32_t b = AllocBucket(1);
      buckets_[b].next = min_bucket_;
      if (min_bucket_ != kNil) buckets_[min_bucket_].prev = b;
      min_bucket_ = b;
    }
    AttachCounter(c, min_bucket_);
    index_.emplace(key, c);
    return;
  }
  // Replace a counter from the minimum bucket.
  const std::uint32_t c = buckets_[min_bucket_].head;
  Counter& cn = counters_[c];
  index_.erase(cn.key);
  index_.emplace(key, c);
  cn.key = key;
  cn.error = buckets_[min_bucket_].count;
  IncrementCounter(c);
}

std::vector<HeavyHitter> UnarySpaceSaving::Query(double phi) const {
  std::vector<HeavyHitter> out;
  const double threshold = phi * static_cast<double>(total_count_);
  for (std::size_t c = 0; c < num_counters_; ++c) {
    const Counter& cn = counters_[c];
    const auto count = static_cast<double>(buckets_[cn.bucket].count);
    if (count >= threshold) {
      out.push_back(HeavyHitter{cn.key, count, static_cast<double>(cn.error)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

std::uint64_t UnarySpaceSaving::Estimate(std::uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  return buckets_[counters_[it->second].bucket].count;
}

std::size_t UnarySpaceSaving::MemoryBytes() const {
  return num_counters_ * (sizeof(Counter) + 16) +
         buckets_.size() * sizeof(Bucket);
}

void UnarySpaceSaving::CheckInvariants() const {
  FWDECAY_CHECK_MSG(num_counters_ <= capacity_,
                    "stream-summary holds more counters than its capacity");
  FWDECAY_CHECK_MSG(index_.size() == num_counters_,
                    "index and live-counter counts differ");
  std::vector<char> bucket_seen(buckets_.size(), 0);
  std::vector<char> counter_seen(num_counters_, 0);
  std::size_t live_counters = 0;
  std::size_t live_buckets = 0;
  std::uint64_t sum = 0;
  std::uint64_t prev_count = 0;
  std::uint32_t prev_b = kNil;
  for (std::uint32_t b = min_bucket_; b != kNil; b = buckets_[b].next) {
    FWDECAY_CHECK_MSG(b < buckets_.size(), "bucket link out of range");
    FWDECAY_CHECK_MSG(!bucket_seen[b], "bucket chain contains a cycle");
    bucket_seen[b] = 1;
    ++live_buckets;
    const Bucket& bk = buckets_[b];
    FWDECAY_CHECK_MSG(bk.prev == prev_b, "bucket prev link inconsistent "
                                         "with chain order");
    FWDECAY_CHECK_MSG(prev_b == kNil || bk.count > prev_count,
                      "bucket counts not strictly ascending from "
                      "min_bucket_ (replacement would evict a non-minimal "
                      "counter)");
    FWDECAY_CHECK_MSG(bk.head != kNil, "live bucket holds no counters");
    std::uint32_t prev_c = kNil;
    for (std::uint32_t c = bk.head; c != kNil; c = counters_[c].next) {
      FWDECAY_CHECK_MSG(c < num_counters_, "counter link out of range");
      FWDECAY_CHECK_MSG(!counter_seen[c], "counter chain contains a cycle");
      counter_seen[c] = 1;
      ++live_counters;
      const Counter& cn = counters_[c];
      FWDECAY_CHECK_MSG(cn.bucket == b,
                        "counter bucket field diverged from the chain it "
                        "is linked into");
      FWDECAY_CHECK_MSG(cn.prev == prev_c, "counter prev link inconsistent "
                                           "with chain order");
      FWDECAY_CHECK_MSG(cn.error < bk.count,
                        "counter error not below its bucket count");
      auto it = index_.find(cn.key);
      FWDECAY_CHECK_MSG(it != index_.end() && it->second == c,
                        "index entry missing or pointing at another "
                        "counter");
      sum += bk.count;
      prev_c = c;
    }
    prev_count = bk.count;
    prev_b = b;
  }
  FWDECAY_CHECK_MSG(live_counters == num_counters_,
                    "live counters unreachable from the bucket chain");
  // Count conservation: every Update() raises exactly one counter's
  // bucket count by one (integers, so the match is exact).
  FWDECAY_CHECK_MSG(sum == total_count_,
                    "counter counts do not sum to TotalCount()");
  std::size_t free_buckets = 0;
  for (std::uint32_t b = free_bucket_; b != kNil; b = buckets_[b].next) {
    FWDECAY_CHECK_MSG(b < buckets_.size(), "free-list link out of range");
    FWDECAY_CHECK_MSG(!bucket_seen[b],
                      "bucket slot both live and on the free list");
    bucket_seen[b] = 2;
    ++free_buckets;
  }
  FWDECAY_CHECK_MSG(live_buckets + free_buckets == buckets_.size(),
                    "bucket slot neither live nor free (leaked)");
}

}  // namespace fwdecay
