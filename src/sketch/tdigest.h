#ifndef FWDECAY_SKETCH_TDIGEST_H_
#define FWDECAY_SKETCH_TDIGEST_H_

#include <cstdint>
#include <vector>

// Merging t-digest (Dunning & Ertl) with weighted insertion — a modern
// alternative weighted-quantile backend ablated against the q-digest in
// bench_micro. Where the q-digest needs a bounded integer universe, the
// t-digest handles arbitrary real values with relative-accuracy tails,
// at the price of probabilistic (interpolated) rather than deterministic
// rank guarantees. Forward decay is agnostic to the backend: both
// consume (value, static weight) pairs (Theorem 3's reduction).

namespace fwdecay {

class TDigest {
 public:
  /// `compression` (delta) bounds the number of retained centroids
  /// (~2*delta) and the rank resolution (error ~ q(1-q)/delta).
  explicit TDigest(double compression = 100.0);

  /// Adds `value` with positive `weight`. Amortized O(log n) via a
  /// buffer that is merge-compressed when full.
  void Add(double value, double weight);

  /// Estimated phi-quantile (phi in [0, 1]).
  double Quantile(double phi) const;

  /// Estimated fraction of total weight at or below `value`.
  double CdfAt(double value) const;

  /// Merges another digest (any compression).
  void Merge(const TDigest& other);

  double TotalWeight() const { return total_weight_; }
  std::size_t CentroidCount() const;
  std::size_t MemoryBytes() const;

 private:
  struct Centroid {
    double mean;
    double weight;
  };

  // Sorts the buffer into the centroid list and re-clusters under the
  // k1 scale-function size limits.
  void Compress() const;

  double compression_;
  double total_weight_ = 0.0;
  // Compression is logically const (it does not change the summarized
  // distribution), so query methods can trigger it.
  mutable std::vector<Centroid> centroids_;  // sorted by mean after Compress
  mutable std::vector<Centroid> buffer_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_TDIGEST_H_
