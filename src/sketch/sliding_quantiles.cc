#include "sketch/sliding_quantiles.h"

#include <cmath>

#include "util/check.h"

namespace fwdecay {

SlidingWindowQuantiles::SlidingWindowQuantiles(double eps,
                                               double pane_seconds,
                                               int universe_bits)
    : eps_(eps), pane_seconds_(pane_seconds), universe_bits_(universe_bits) {
  FWDECAY_CHECK_MSG(pane_seconds > 0.0, "pane width must be positive");
}

void SlidingWindowQuantiles::Update(double ts, std::uint64_t v) {
  const auto pane = static_cast<std::int64_t>(std::floor(ts / pane_seconds_));
  if (panes_.empty() || panes_.back().index < pane) {
    FWDECAY_CHECK_MSG(panes_.empty() || ts >= panes_.back().index *
                                                  pane_seconds_,
                      "timestamps must be non-decreasing");
    panes_.push_back(Pane{pane, QDigest(universe_bits_, eps_)});
  }
  FWDECAY_CHECK_MSG(panes_.back().index == pane,
                    "timestamps must be non-decreasing");
  panes_.back().digest.Update(v, 1.0);
}

std::uint64_t SlidingWindowQuantiles::QueryWindowQuantile(double now,
                                                          double window,
                                                          double phi) const {
  QDigest merged(universe_bits_, eps_);
  const double cutoff = now - window;
  for (const Pane& pane : panes_) {
    // A pane participates if any part of it lies inside the window.
    const double pane_end =
        (static_cast<double>(pane.index) + 1.0) * pane_seconds_;
    if (pane_end >= cutoff) merged.Merge(pane.digest);
  }
  return merged.Quantile(phi);
}

std::pair<double, double> SlidingWindowQuantiles::DecayedRank(
    double now, const std::function<double(double)>& f,
    std::uint64_t v) const {
  double rank = 0.0;
  double total = 0.0;
  for (const Pane& pane : panes_) {
    // Age of the pane's midpoint — the discretization error is bounded
    // by the pane width, the analogue of the Cohen-Strauss grid step.
    const double mid =
        (static_cast<double>(pane.index) + 0.5) * pane_seconds_;
    const double age = now - mid;
    const double w = f(age < 0.0 ? 0.0 : age);
    rank += w * pane.digest.Rank(v);
    total += w * pane.digest.TotalWeight();
  }
  return {rank, total};
}

std::uint64_t SlidingWindowQuantiles::QueryDecayedQuantile(
    double now, const std::function<double(double)>& f, double phi) const {
  if (panes_.empty()) return 0;
  // Binary search for the smallest v with decayed rank >= phi * total.
  const double total = DecayedRank(now, f, (std::uint64_t{1} << universe_bits_) - 1)
                           .second;
  const double target = phi * total;
  std::uint64_t lo = 0;
  std::uint64_t hi = (std::uint64_t{1} << universe_bits_) - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (DecayedRank(now, f, mid).first >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::size_t SlidingWindowQuantiles::MemoryBytes() const {
  std::size_t total = 0;
  for (const Pane& pane : panes_) total += pane.digest.MemoryBytes() + 16;
  return total;
}

double SlidingWindowQuantiles::TotalWeight() const {
  double total = 0.0;
  for (const Pane& pane : panes_) total += pane.digest.TotalWeight();
  return total;
}

}  // namespace fwdecay
