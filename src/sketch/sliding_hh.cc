#include "sketch/sliding_hh.h"

#include <algorithm>

#include "util/check.h"

namespace fwdecay {

SlidingWindowHeavyHitters::SlidingWindowHeavyHitters(double eps,
                                                     int grid_size)
    : eps_(eps), grid_size_(grid_size), total_(eps) {
  FWDECAY_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
}

void SlidingWindowHeavyHitters::Update(double ts, std::uint64_t key) {
  if (!has_data_) {
    first_ts_ = ts;
    has_data_ = true;
  }
  last_ts_ = ts;
  total_.Insert(ts);
  auto it = per_key_.find(key);
  if (it == per_key_.end()) {
    it = per_key_.emplace(key, EhCount(eps_)).first;
  }
  it->second.Insert(ts);
  ++updates_since_prune_;
  MaybePrune();
}

void SlidingWindowHeavyHitters::MaybePrune() {
  // Amortized: scan all keys once per |keys| updates. A key is dropped
  // only when even its *total* count is below half the eps-fraction of
  // the stream, so it cannot be a heavy hitter for phi >= eps under any
  // monotone decay (its decayed count is at most f(0) * count while the
  // decayed total is at least f(horizon) * ... — the factor-2 slack
  // absorbs the discretization). In heavy-tailed traffic this prunes
  // little: most keys remain tracked, which is the cost the paper's
  // Figure 4(c,d) shows for this approach.
  if (updates_since_prune_ < per_key_.size() + 1024) return;
  updates_since_prune_ = 0;
  const double threshold =
      eps_ * 0.5 * static_cast<double>(total_.TotalCount());
  for (auto it = per_key_.begin(); it != per_key_.end();) {
    if (static_cast<double>(it->second.TotalCount()) < threshold) {
      it = per_key_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<HeavyHitter> SlidingWindowHeavyHitters::QueryWindow(
    double now, double window, double phi) const {
  std::vector<HeavyHitter> out;
  const double total = total_.CountInWindow(now, window);
  const double threshold = phi * total;
  for (const auto& [key, eh] : per_key_) {
    const double est = eh.CountInWindow(now, window);
    if (est >= threshold) {
      out.push_back(HeavyHitter{key, est, eps_ * est});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

std::vector<HeavyHitter> SlidingWindowHeavyHitters::QueryDecayed(
    double now, const BackwardDecayFn& f, double phi) const {
  std::vector<HeavyHitter> out;
  if (!has_data_) return out;
  const double horizon = now - first_ts_;
  const double total =
      CombineWindowQueries(horizon, f, grid_size_, [&](double window) {
        return total_.CountInWindow(now, window);
      });
  const double threshold = phi * total;
  for (const auto& [key, eh] : per_key_) {
    const double est =
        CombineWindowQueries(horizon, f, grid_size_, [&](double window) {
          return eh.CountInWindow(now, window);
        });
    if (est >= threshold) {
      out.push_back(HeavyHitter{key, est, eps_ * est});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

void SlidingWindowHeavyHitters::CheckInvariants() const {
  total_.CheckInvariants();
  std::uint64_t per_key_sum = 0;
  for (const auto& [key, eh] : per_key_) {
    eh.CheckInvariants();
    FWDECAY_CHECK_MSG(eh.TotalCount() >= 1,
                      "tracked key with an empty histogram (should have "
                      "been pruned or never created)");
    per_key_sum += eh.TotalCount();
  }
  // Every Update() feeds the total EH and exactly one per-key EH, and
  // pruning only removes whole keys — so the per-key counts can never
  // exceed the total.
  FWDECAY_CHECK_MSG(per_key_sum <= total_.TotalCount(),
                    "per-key counts exceed the total arrival count");
  if (has_data_) {
    FWDECAY_CHECK_MSG(first_ts_ <= last_ts_,
                      "timestamp span inverted (first_ts_ > last_ts_)");
  } else {
    FWDECAY_CHECK_MSG(total_.TotalCount() == 0 && per_key_.empty(),
                      "tracker holds data but has_data_ is false");
  }
  FWDECAY_CHECK_MSG(updates_since_prune_ < per_key_.size() + 1024,
                    "amortized-prune counter at or past its trigger "
                    "(Update() would have pruned)");
}

std::size_t SlidingWindowHeavyHitters::MemoryBytes() const {
  std::size_t total = total_.MemoryBytes();
  for (const auto& [key, eh] : per_key_) {
    total += 8 + 16 + eh.MemoryBytes();  // key + map overhead + EH buckets
  }
  return total;
}

void SlidingWindowHeavyHitters::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(0x57);
  writer->WriteDouble(eps_);
  writer->WriteU32(static_cast<std::uint32_t>(grid_size_));
  writer->WriteDouble(first_ts_);
  writer->WriteDouble(last_ts_);
  writer->WriteU8(has_data_ ? 1 : 0);
  writer->WriteU64(updates_since_prune_);
  total_.SerializeTo(writer);
  std::vector<std::uint64_t> keys;
  keys.reserve(per_key_.size());
  for (const auto& [key, eh] : per_key_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->WriteU32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t key : keys) {
    writer->WriteU64(key);
    per_key_.at(key).SerializeTo(writer);
  }
}

std::optional<SlidingWindowHeavyHitters>
SlidingWindowHeavyHitters::Deserialize(ByteReader* reader) {
  std::uint8_t tag = 0;
  double eps = 0.0;
  std::uint32_t grid = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
  std::uint8_t has_data = 0;
  std::uint64_t since_prune = 0;
  if (!reader->ReadU8(&tag) || tag != 0x57) return std::nullopt;
  if (!reader->ReadDouble(&eps) || !(eps > 0.0 && eps < 1.0)) {
    return std::nullopt;
  }
  if (!reader->ReadU32(&grid) || grid < 2 || grid > 1u << 20) {
    return std::nullopt;
  }
  if (!reader->ReadDouble(&first_ts) || !reader->ReadDouble(&last_ts) ||
      !reader->ReadU8(&has_data) || has_data > 1 ||
      !reader->ReadU64(&since_prune)) {
    return std::nullopt;
  }
  SlidingWindowHeavyHitters out(eps, static_cast<int>(grid));
  out.first_ts_ = first_ts;
  out.last_ts_ = last_ts;
  out.has_data_ = has_data != 0;
  out.updates_since_prune_ = since_prune;
  auto total = EhCount::Deserialize(reader);
  if (!total) return std::nullopt;
  out.total_ = std::move(*total);
  std::uint32_t nkeys = 0;
  if (!reader->ReadU32(&nkeys)) return std::nullopt;
  // A per-key entry is at least 8 (key) + 38 (minimal EhCount frame)
  // bytes; bound the declared count before reserving.
  if (nkeys > reader->Remaining() / 46) return std::nullopt;
  out.per_key_.reserve(nkeys);
  std::uint64_t prev_key = 0;
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    std::uint64_t key = 0;
    if (!reader->ReadU64(&key)) return std::nullopt;
    if (i > 0 && key <= prev_key) return std::nullopt;  // order = no dups
    prev_key = key;
    auto eh = EhCount::Deserialize(reader);
    if (!eh) return std::nullopt;
    out.per_key_.emplace(key, std::move(*eh));
  }
  return out;
}

}  // namespace fwdecay
