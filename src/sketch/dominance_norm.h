#ifndef FWDECAY_SKETCH_DOMINANCE_NORM_H_
#define FWDECAY_SKETCH_DOMINANCE_NORM_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "util/bytes.h"

// Dominance-norm estimation: approximates Σ_v max_{v_i = v} w_i over a
// stream of (key, weight) pairs. Decayed count-distinct under forward
// decay (Definition 9 / Theorem 4) is exactly this norm over the static
// weights w_i = g(t_i - L), scaled by 1/g(t - L) at query time.
//
// Substitution note (see DESIGN.md): the paper cites the range-efficient
// distinct-counting algorithm of Pavan & Tirthapura. We implement the
// same O~(1/eps^2)-space estimator class via geometric weight *level
// sets*: a key with weight w is inserted into the KMV distinct sketch of
// level floor(log_b w). Since D(θ) := #{keys with max weight >= θ} is
// the union of all levels >= log_b θ (KMV unions are exact sketch
// unions), the norm  ∫ D(θ) dθ  is estimated by the geometric sum
// Σ_l D(b^l)·(b^l - b^{l-1}). The discretization underestimates each
// key's weight by at most a factor b, and the KMV error is the usual
// 1/sqrt(k); both are controlled parameters.

namespace fwdecay {

class DominanceNormSketch {
 public:
  /// `k` is the per-level KMV size; `level_base` b > 1 controls the
  /// weight discretization error (weight approximated within factor b).
  explicit DominanceNormSketch(std::size_t k, double level_base = 1.1,
                               std::uint64_t hash_seed = 0x5eed);

  /// Observes `key` with positive weight `weight`. For forward decay this
  /// is called with weight = g(t_i - L), which only ever grows with t_i,
  /// so a key's max weight is set by its most recent arrival.
  void Update(std::uint64_t key, double weight);

  /// Estimates Σ_v max w over all keys observed.
  double Estimate() const;

  /// Merges another sketch (same k, base, and hash seed).
  void Merge(const DominanceNormSketch& other);

  std::size_t LevelCount() const { return levels_.size(); }
  std::size_t MemoryBytes() const;

  /// Serializes the sketch (Section VI-B summary shipping).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a sketch; nullopt on truncated/corrupt input.
  static std::optional<DominanceNormSketch> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): every level holds a non-empty
  /// KMV built with this sketch's k and hash seed (mismatched seeds would
  /// silently break the level-set unions in Estimate()), and each level
  /// KMV passes its own audit. Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  int LevelOf(double weight) const;

  std::size_t k_;
  double level_base_;
  double inv_log_base_;
  std::uint64_t hash_seed_;
  // Sorted by level so Estimate() can sweep top-down; levels are sparse.
  std::map<int, KmvSketch> levels_;
};

/// Dominance norm over HyperLogLog level sets: the same telescoping
/// estimator as DominanceNormSketch with HLL registers replacing KMV as
/// the distinct-counting layer — constant 2^p bytes per level instead of
/// up to k hashes, at the cost of HLL's bias profile. Demonstrates that
/// the Theorem 4 reduction is agnostic to the distinct-count primitive.
class HllDominanceNormSketch {
 public:
  HllDominanceNormSketch(int precision = 12, double level_base = 1.1,
                         std::uint64_t hash_seed = 0x5eed);

  /// Observes `key` with positive weight (see DominanceNormSketch).
  void Update(std::uint64_t key, double weight);

  /// Estimates the dominance norm of the representatives (within a
  /// factor level_base of the true norm, plus HLL error).
  double Estimate() const;

  void Merge(const HllDominanceNormSketch& other);

  std::size_t LevelCount() const { return levels_.size(); }
  std::size_t MemoryBytes() const;

  /// Representation audit (DESIGN.md §7): every level HLL shares this
  /// sketch's precision and hash seed and passes its own register audit.
  /// Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  int LevelOf(double weight) const;

  int precision_;
  double level_base_;
  double inv_log_base_;
  std::uint64_t hash_seed_;
  std::map<int, HllSketch> levels_;
};

/// Exact dominance norm (hash map of per-key max weight); the ground
/// truth used by tests and the "exact" series in benches.
class ExactDominanceNorm {
 public:
  void Update(std::uint64_t key, double weight) {
    auto [it, inserted] = max_weight_.try_emplace(key, weight);
    if (!inserted && weight > it->second) it->second = weight;
  }

  double Estimate() const {
    double norm = 0.0;
    for (const auto& [key, w] : max_weight_) norm += w;
    return norm;
  }

  std::size_t DistinctKeys() const { return max_weight_.size(); }

 private:
  std::unordered_map<std::uint64_t, double> max_weight_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_DOMINANCE_NORM_H_
