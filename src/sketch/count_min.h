#ifndef FWDECAY_SKETCH_COUNT_MIN_H_
#define FWDECAY_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.h"

// Count-Min sketch (Cormode & Muthukrishnan) with real-valued weighted
// updates — an alternative backend for forward-decayed heavy hitters
// (Theorem 2 only needs *some* weighted heavy-hitter summary; the paper
// uses SpaceSaving, and bench_micro ablates the two). Point estimates
// are biased upward by at most eps * W with probability 1 - delta.

namespace fwdecay {

class CountMinSketch {
 public:
  /// `eps` is the additive error fraction (width = ceil(e/eps));
  /// `delta` the failure probability (depth = ceil(ln(1/delta))).
  CountMinSketch(double eps, double delta, std::uint64_t seed = 0xc1);

  /// Adds `weight` (> 0) to `key`. O(depth).
  void Update(std::uint64_t key, double weight);

  /// Upper-bound point estimate of the key's total weight.
  double Estimate(std::uint64_t key) const;

  /// Total inserted weight (exact).
  double TotalWeight() const { return total_weight_; }

  /// Merges a sketch with identical dimensions and seed.
  void Merge(const CountMinSketch& other);

  /// Multiplies all cells by factor > 0 (landmark rescaling support).
  void ScaleWeights(double factor);

  void SerializeTo(ByteWriter* writer) const;
  static std::optional<CountMinSketch> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): non-negative finite cells in a
  /// width*depth grid, and per-row weight conservation — every Update()
  /// adds its weight to exactly one cell in each row, so each row sums to
  /// TotalWeight(). Deserialize() does not cross-check the total against
  /// the cells; this does. Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const;

  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }
  std::size_t MemoryBytes() const { return cells_.size() * sizeof(double); }

 private:
  std::size_t CellIndex(std::size_t row, std::uint64_t key) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  double total_weight_ = 0.0;
  std::vector<double> cells_;  // row-major depth x width
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_COUNT_MIN_H_
