#include "sketch/waves.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fwdecay {

WaveCount::WaveCount(double eps) : eps_(eps) {
  FWDECAY_CHECK_MSG(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
  per_level_ = static_cast<std::size_t>(std::ceil(1.0 / eps)) + 2;
}

void WaveCount::Insert(double ts) {
  ++count_;
  const std::uint64_t index = count_;
  // The arrival joins every level whose stride divides its index.
  for (std::size_t l = 0;; ++l) {
    if ((index & ((std::uint64_t{1} << l) - 1)) != 0) break;
    if (levels_.size() <= l) levels_.emplace_back();
    Level& level = levels_[l];
    FWDECAY_DCHECK(level.entries.empty() ||
                   ts >= level.entries.back().first);
    level.entries.emplace_back(ts, index);
    if (level.entries.size() > per_level_) level.entries.pop_front();
  }
}

double WaveCount::CountInWindow(double now, double window) const {
  if (count_ == 0) return 0.0;
  const double cutoff = now - window;
  // Finest level whose retained span reaches back to the cutoff: its
  // oldest retained timestamp is <= cutoff, so the boundary arrival lies
  // within the level (index error at most one stride).
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const Level& level = levels_[l];
    if (level.entries.empty() || level.entries.front().first > cutoff) {
      continue;
    }
    // Largest retained timestamp <= cutoff.
    auto it = std::upper_bound(
        level.entries.begin(), level.entries.end(), cutoff,
        [](double value, const auto& e) { return value < e.first; });
    --it;  // guaranteed valid: front() <= cutoff
    const double stride = std::ldexp(1.0, static_cast<int>(l));
    // True boundary index lies in [it->index, it->index + stride); use
    // the midpoint, bounding the error by stride/2.
    const double boundary =
        static_cast<double>(it->second) + stride / 2.0;
    const double in_window = static_cast<double>(count_) - boundary;
    return in_window < 0.0 ? 0.0 : in_window;
  }
  // No retained entry is as old as the cutoff: every arrival the sketch
  // can distinguish is inside the window.
  return static_cast<double>(count_);
}

std::size_t WaveCount::StoredPositions() const {
  std::size_t n = 0;
  for (const Level& level : levels_) n += level.entries.size();
  return n;
}

std::size_t WaveCount::MemoryBytes() const {
  return StoredPositions() * sizeof(std::pair<double, std::uint64_t>);
}

}  // namespace fwdecay
