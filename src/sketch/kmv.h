#ifndef FWDECAY_SKETCH_KMV_H_
#define FWDECAY_SKETCH_KMV_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "util/bytes.h"
#include "util/check.h"
#include "util/hash.h"

// K-minimum-values distinct-count sketch (Bar-Yossef et al.).
//
// Serves as the distinct-counting primitive inside the dominance-norm
// estimator (decayed count-distinct, Theorem 4). Unions of KMV sketches
// built with the SAME hash seed are themselves KMV sketches, which the
// level-set estimator relies on.

namespace fwdecay {

class KmvSketch {
 public:
  /// `k` controls accuracy: relative standard error ~= 1/sqrt(k - 2).
  /// Sketches that will be unioned must share `hash_seed`.
  explicit KmvSketch(std::size_t k, std::uint64_t hash_seed = 0)
      : k_(k), hash_seed_(hash_seed) {
    FWDECAY_CHECK_MSG(k >= 3, "KMV needs k >= 3");
    heap_.reserve(k);
  }

  /// Observes a key (multiplicity-insensitive).
  void Insert(std::uint64_t key) { InsertHash(HashU64(key, hash_seed_)); }

  /// Observes a pre-hashed key; the hash must come from the same seed.
  void InsertHash(std::uint64_t h) {
    if (heap_.size() < k_) {
      if (members_.insert(h).second) {
        heap_.push_back(h);
        std::push_heap(heap_.begin(), heap_.end());
      }
      return;
    }
    if (h >= heap_.front()) return;
    if (!members_.insert(h).second) return;
    std::pop_heap(heap_.begin(), heap_.end());
    members_.erase(heap_.back());
    heap_.back() = h;
    std::push_heap(heap_.begin(), heap_.end());
  }

  /// Estimated number of distinct keys observed.
  double Estimate() const {
    if (heap_.size() < k_) return static_cast<double>(heap_.size());
    // kth smallest normalized hash value.
    const double u_k = HashToUnitOpen(heap_.front());
    return static_cast<double>(k_ - 1) / u_k;
  }

  /// Unions another sketch (must share k and hash seed).
  void Merge(const KmvSketch& other) {
    FWDECAY_CHECK(hash_seed_ == other.hash_seed_);
    for (std::uint64_t h : other.heap_) InsertHash(h);
  }

  std::size_t k() const { return k_; }
  std::uint64_t hash_seed() const { return hash_seed_; }
  std::size_t size() const { return heap_.size(); }
  const std::vector<std::uint64_t>& hashes() const { return heap_; }
  std::size_t MemoryBytes() const { return heap_.size() * 8 + 64; }

  /// Serializes the sketch (Section VI-B summary shipping).
  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x4b);  // 'K'
    writer->WriteU64(k_);
    writer->WriteU64(hash_seed_);
    writer->WriteU32(static_cast<std::uint32_t>(heap_.size()));
    for (std::uint64_t h : heap_) writer->WriteU64(h);
  }

  /// Reconstructs a sketch; nullopt on truncated/corrupt input.
  static std::optional<KmvSketch> Deserialize(ByteReader* reader) {
    std::uint8_t tag = 0;
    std::uint64_t k = 0;
    std::uint64_t seed = 0;
    std::uint32_t n = 0;
    if (!reader->ReadU8(&tag) || tag != 0x4b) return std::nullopt;
    // The constructor reserves k slots; cap it so a corrupt header
    // can't demand an absurd allocation before any hash is read.
    if (!reader->ReadU64(&k) || k < 3 || k > (std::uint64_t{1} << 26)) {
      return std::nullopt;
    }
    if (!reader->ReadU64(&seed)) return std::nullopt;
    if (!reader->ReadU32(&n) || n > k || n > reader->Remaining() / 8) {
      return std::nullopt;
    }
    KmvSketch out(static_cast<std::size_t>(k), seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t h = 0;
      if (!reader->ReadU64(&h)) return std::nullopt;
      out.InsertHash(h);
    }
    return out;
  }

  /// Representation audit (DESIGN.md §7): at most k retained hashes,
  /// max-heap order (so the eviction threshold heap_.front() really is
  /// the largest retained hash), and the membership set mirroring the
  /// heap exactly — which also proves the retained hashes are distinct.
  /// Aborts via FWDECAY_CHECK on violation.
  void CheckInvariants() const {
    FWDECAY_CHECK_MSG(heap_.size() <= k_, "KMV retains more than k hashes");
    FWDECAY_CHECK_MSG(std::is_heap(heap_.begin(), heap_.end()),
                      "KMV max-heap order violated (kth-minimum threshold "
                      "would be wrong)");
    FWDECAY_CHECK_MSG(members_.size() == heap_.size(),
                      "KMV membership set out of sync with the heap");
    for (std::uint64_t h : heap_) {
      FWDECAY_CHECK_MSG(members_.count(h) == 1,
                        "retained hash missing from the membership set");
    }
  }

 private:
  std::size_t k_;
  std::uint64_t hash_seed_;
  std::vector<std::uint64_t> heap_;  // max-heap of the k smallest hashes
  std::unordered_set<std::uint64_t> members_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_KMV_H_
