#ifndef FWDECAY_SKETCH_EXP_HISTOGRAM_H_
#define FWDECAY_SKETCH_EXP_HISTOGRAM_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "util/bytes.h"

// Exponential Histograms (Datar, Gionis, Indyk, Motwani, SODA'02).
//
// This is the *backward decay* baseline of the paper's Figure 2: following
// Cohen & Strauss, a single EH can answer a sliding-window count/sum for
// any window width, and an arbitrary backward-decayed sum is a combination
// of scaled window queries (see backward_sum.h). The cost the paper
// highlights — kilobytes of state per group and a per-tuple cascade of
// bucket merges — is intrinsic to the structure and is what the benchmarks
// measure.

namespace fwdecay {

/// EH for counting 1-unit arrivals with non-decreasing timestamps.
///
/// With parameter eps, a window-count query returns an estimate within a
/// (1 + eps) relative factor using O((1/eps) * log(eps * N)) buckets.
class EhCount {
 public:
  /// `eps` is the relative error; `horizon` (optional) lets the structure
  /// drop buckets older than `now - horizon` — pass infinity to answer
  /// queries over the whole stream history.
  explicit EhCount(double eps,
                   double horizon = std::numeric_limits<double>::infinity());

  /// Records one arrival at timestamp `ts`. Timestamps must be
  /// non-decreasing (EHs require in-order arrival — one of the backward
  /// model's limitations that forward decay removes).
  void Insert(double ts);

  /// Estimated number of arrivals in (now - window, now].
  double CountInWindow(double now, double window) const;

  /// Exact total arrivals ever inserted (kept on the side).
  std::uint64_t TotalCount() const { return total_count_; }

  std::size_t BucketCount() const { return buckets_.size(); }
  std::size_t MemoryBytes() const;
  double eps() const { return eps_; }

  /// Serializes the exact bucket state (engine checkpointing: a
  /// restored EH must merge and expire identically to the original).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs an EH; nullopt on truncated/corrupt input.
  static std::optional<EhCount> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): power-of-two bucket sizes
  /// non-decreasing toward the back, at most k/2 + 2 buckets per size
  /// class, timestamps non-increasing toward the back and bounded by
  /// last_ts_, and Σ bucket sizes == TotalCount() when no horizon ever
  /// expired a bucket (<= otherwise). Aborts via FWDECAY_CHECK on
  /// violation.
  void CheckInvariants() const;

 private:
  struct Bucket {
    double ts;          // most recent timestamp in the bucket
    std::uint64_t size; // always a power of two
  };

  void Expire(double now);

  double eps_;
  double horizon_;
  std::size_t max_per_size_;  // buckets allowed per size class
  std::uint64_t total_count_ = 0;
  double last_ts_ = -std::numeric_limits<double>::infinity();
  // Newest bucket at the front; sizes non-decreasing toward the back.
  std::deque<Bucket> buckets_;
};

/// EH for sliding-window sums of integer values in [0, 2^value_bits).
///
/// Uses the bit-decomposition reduction of Datar et al.: value v feeds an
/// EhCount for every set bit of v; the window sum is the weighted sum of
/// per-bit window counts, preserving the (1 + eps) guarantee.
class EhSum {
 public:
  EhSum(double eps, int value_bits,
        double horizon = std::numeric_limits<double>::infinity());

  /// Records an arrival of value `v` at timestamp `ts` (non-decreasing).
  void Insert(double ts, std::uint64_t v);

  /// Estimated sum of values in (now - window, now].
  double SumInWindow(double now, double window) const;

  /// Exact total sum ever inserted (kept on the side).
  double TotalSum() const { return total_sum_; }

  std::size_t BucketCount() const;
  std::size_t MemoryBytes() const;
  int value_bits() const { return static_cast<int>(bit_ehs_.size()); }

  /// Serializes all per-bit EHs plus the exact running total.
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs an EhSum; nullopt on truncated/corrupt input.
  static std::optional<EhSum> Deserialize(ByteReader* reader);

  /// Representation audit (DESIGN.md §7): audits every per-bit EH and
  /// checks the bit-decomposition identity Σ_b 2^b * bit_count(b) ==
  /// TotalSum(), which Deserialize() does not cross-check. Aborts via
  /// FWDECAY_CHECK on violation.
  void CheckInvariants() const;

 private:
  double total_sum_ = 0.0;
  std::vector<EhCount> bit_ehs_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_EXP_HISTOGRAM_H_
