#include "sketch/dominance_norm.h"

#include <cmath>

#include "util/check.h"

namespace fwdecay {

DominanceNormSketch::DominanceNormSketch(std::size_t k, double level_base,
                                         std::uint64_t hash_seed)
    : k_(k),
      level_base_(level_base),
      inv_log_base_(1.0 / std::log(level_base)),
      hash_seed_(hash_seed) {
  FWDECAY_CHECK_MSG(level_base > 1.0, "level base must exceed 1");
}

int DominanceNormSketch::LevelOf(double weight) const {
  FWDECAY_DCHECK(weight > 0.0);
  return static_cast<int>(std::floor(std::log(weight) * inv_log_base_));
}

void DominanceNormSketch::Update(std::uint64_t key, double weight) {
  const int level = LevelOf(weight);
  auto it = levels_.find(level);
  if (it == levels_.end()) {
    it = levels_.emplace(level, KmvSketch(k_, hash_seed_)).first;
  }
  it->second.Insert(key);
}

double DominanceNormSketch::Estimate() const {
  if (levels_.empty()) return 0.0;
  // Sweep present levels from the highest down, unioning sketches as we
  // go; after merging level l, `acc` sketches D(>= b^l) = #keys whose max
  // weight is at least b^l. The norm of the representatives,
  //   Σ_keys b^{level(key)} = Σ_l D(>= b^l) * (b^l - b^{l'})
  // where l' is the next lower *present* level (or -inf), telescopes
  // exactly; absent levels add no keys, so their strips fold into the
  // term of the present level above them.
  KmvSketch acc(k_, hash_seed_);
  double norm = 0.0;
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    acc.Merge(it->second);
    auto next = std::next(it);
    const double hi = std::pow(level_base_, it->first);
    const double lo =
        (next == levels_.rend()) ? 0.0 : std::pow(level_base_, next->first);
    norm += acc.Estimate() * (hi - lo);
  }
  // `norm` estimates Σ b^{level(key)}, which under-approximates the true
  // dominance norm by at most a factor of level_base_ (each key's true
  // max weight lies in [b^l, b^{l+1})).
  return norm;
}

void DominanceNormSketch::Merge(const DominanceNormSketch& other) {
  FWDECAY_CHECK(k_ == other.k_ && hash_seed_ == other.hash_seed_);
  FWDECAY_CHECK(level_base_ == other.level_base_);
  for (const auto& [level, sketch] : other.levels_) {
    auto it = levels_.find(level);
    if (it == levels_.end()) {
      levels_.emplace(level, sketch);
    } else {
      it->second.Merge(sketch);
    }
  }
}

std::size_t DominanceNormSketch::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [level, sketch] : levels_) total += sketch.MemoryBytes();
  return total;
}

void DominanceNormSketch::CheckInvariants() const {
  FWDECAY_CHECK_MSG(level_base_ > 1.0, "level base must exceed 1");
  for (const auto& [level, sketch] : levels_) {
    sketch.CheckInvariants();
    FWDECAY_CHECK_MSG(sketch.k() == k_,
                      "level KMV size diverged from the sketch's k");
    FWDECAY_CHECK_MSG(sketch.hash_seed() == hash_seed_,
                      "level KMV hash seed diverged (level-set unions "
                      "would silently be wrong)");
    FWDECAY_CHECK_MSG(sketch.size() >= 1,
                      "empty level sketch (levels are created on first "
                      "insert)");
  }
}

HllDominanceNormSketch::HllDominanceNormSketch(int precision,
                                               double level_base,
                                               std::uint64_t hash_seed)
    : precision_(precision),
      level_base_(level_base),
      inv_log_base_(1.0 / std::log(level_base)),
      hash_seed_(hash_seed) {
  FWDECAY_CHECK_MSG(level_base > 1.0, "level base must exceed 1");
}

int HllDominanceNormSketch::LevelOf(double weight) const {
  FWDECAY_DCHECK(weight > 0.0);
  return static_cast<int>(std::floor(std::log(weight) * inv_log_base_));
}

void HllDominanceNormSketch::Update(std::uint64_t key, double weight) {
  const int level = LevelOf(weight);
  auto it = levels_.find(level);
  if (it == levels_.end()) {
    it = levels_.emplace(level, HllSketch(precision_, hash_seed_)).first;
  }
  it->second.Insert(key);
}

double HllDominanceNormSketch::Estimate() const {
  if (levels_.empty()) return 0.0;
  // Same top-down telescoping as the KMV variant; HLL merges are exact
  // register-wise unions, so the running accumulator sketches D(>= b^l).
  HllSketch acc(precision_, hash_seed_);
  double norm = 0.0;
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    acc.Merge(it->second);
    auto next = std::next(it);
    const double hi = std::pow(level_base_, it->first);
    const double lo =
        (next == levels_.rend()) ? 0.0 : std::pow(level_base_, next->first);
    norm += acc.Estimate() * (hi - lo);
  }
  return norm;
}

void HllDominanceNormSketch::Merge(const HllDominanceNormSketch& other) {
  FWDECAY_CHECK(precision_ == other.precision_ &&
                hash_seed_ == other.hash_seed_);
  FWDECAY_CHECK(level_base_ == other.level_base_);
  for (const auto& [level, sketch] : other.levels_) {
    auto it = levels_.find(level);
    if (it == levels_.end()) {
      levels_.emplace(level, sketch);
    } else {
      it->second.Merge(sketch);
    }
  }
}

std::size_t HllDominanceNormSketch::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [level, sketch] : levels_) total += sketch.MemoryBytes();
  return total;
}

void HllDominanceNormSketch::CheckInvariants() const {
  FWDECAY_CHECK_MSG(level_base_ > 1.0, "level base must exceed 1");
  for (const auto& [level, sketch] : levels_) {
    sketch.CheckInvariants();
    FWDECAY_CHECK_MSG(sketch.precision() == precision_,
                      "level HLL precision diverged from the sketch's");
    FWDECAY_CHECK_MSG(sketch.hash_seed() == hash_seed_,
                      "level HLL hash seed diverged (register-wise "
                      "unions would silently be wrong)");
  }
}

void DominanceNormSketch::SerializeTo(ByteWriter* writer) const {
  writer->WriteU8(0x44);  // 'D'
  writer->WriteU64(k_);
  writer->WriteDouble(level_base_);
  writer->WriteU64(hash_seed_);
  writer->WriteU32(static_cast<std::uint32_t>(levels_.size()));
  for (const auto& [level, sketch] : levels_) {
    writer->WriteI64(level);
    sketch.SerializeTo(writer);
  }
}

std::optional<DominanceNormSketch> DominanceNormSketch::Deserialize(
    ByteReader* reader) {
  std::uint8_t tag = 0;
  std::uint64_t k = 0;
  double base = 0.0;
  std::uint64_t seed = 0;
  std::uint32_t n = 0;
  if (!reader->ReadU8(&tag) || tag != 0x44) return std::nullopt;
  // k flows into per-level KmvSketch constructors that reserve k slots;
  // cap it so a corrupt header can't demand absurd memory.
  if (!reader->ReadU64(&k) || k < 3 || k > (std::uint64_t{1} << 26)) {
    return std::nullopt;
  }
  if (!reader->ReadDouble(&base) || !(base > 1.0)) return std::nullopt;
  if (!reader->ReadU64(&seed) || !reader->ReadU32(&n)) return std::nullopt;
  // Each level entry carries at least an 8-byte level tag, so a count
  // larger than the bytes actually present is corrupt; rejecting it
  // up front ties the loop bound to the input size.
  if (n > reader->Remaining() / 8) return std::nullopt;
  DominanceNormSketch out(static_cast<std::size_t>(k), base, seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::int64_t level = 0;
    if (!reader->ReadI64(&level)) return std::nullopt;
    auto kmv = KmvSketch::Deserialize(reader);
    if (!kmv.has_value() || kmv->k() != k || kmv->hash_seed() != seed) {
      return std::nullopt;
    }
    out.levels_.emplace(static_cast<int>(level), *std::move(kmv));
  }
  return out;
}

}  // namespace fwdecay
