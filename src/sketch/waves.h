#ifndef FWDECAY_SKETCH_WAVES_H_
#define FWDECAY_SKETCH_WAVES_H_

#include <cstdint>
#include <deque>
#include <vector>

// Deterministic Waves (Gibbons & Tirthapura, SPAA'02): the other classic
// sliding-window counter the paper's related-work section surveys
// alongside exponential histograms. Answers "how many arrivals in the
// last W time units" within a 1+eps factor using O((1/eps) log(eps N))
// stored positions.
//
// Included as an ablation substrate: bench_micro compares Waves and EH
// as the window-query backend of the Cohen–Strauss backward-decay
// reduction; both carry the same per-group state burden that forward
// decay removes.

namespace fwdecay {

/// Wave-based sliding-window count over non-decreasing timestamps.
class WaveCount {
 public:
  /// eps is the relative error of window-count queries.
  explicit WaveCount(double eps);

  /// Records one arrival at timestamp `ts` (non-decreasing).
  void Insert(double ts);

  /// Estimated number of arrivals in (now - window, now].
  double CountInWindow(double now, double window) const;

  /// Exact total arrivals (kept on the side).
  std::uint64_t TotalCount() const { return count_; }

  std::size_t StoredPositions() const;
  std::size_t MemoryBytes() const;

 private:
  // Level l keeps the timestamps of arrivals whose 1-based index is
  // divisible by 2^l, truncated to the most recent (1/eps + 2) entries.
  // The window count is reconstructed from the coarsest level that still
  // covers the window boundary.
  struct Level {
    std::deque<std::pair<double, std::uint64_t>> entries;  // (ts, index)
  };

  double eps_;
  std::size_t per_level_;
  std::uint64_t count_ = 0;
  std::vector<Level> levels_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SKETCH_WAVES_H_
