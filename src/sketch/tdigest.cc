#include "sketch/tdigest.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fwdecay {

namespace {

// k1 scale function: k(q) = delta/(2*pi) * asin(2q - 1). The size limit
// for a cluster spanning [q0, q1] is k(q1) - k(q0) <= 1.
double ScaleK(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * 3.14159265358979323846) *
         std::asin(2.0 * q - 1.0);
}

}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  FWDECAY_CHECK_MSG(compression >= 10.0, "compression must be >= 10");
  buffer_.reserve(static_cast<std::size_t>(compression));
}

void TDigest::Add(double value, double weight) {
  FWDECAY_DCHECK(weight > 0.0);
  FWDECAY_CHECK_MSG(std::isfinite(value), "t-digest values must be finite");
  buffer_.push_back(Centroid{value, weight});
  total_weight_ += weight;
  if (buffer_.size() >= static_cast<std::size_t>(compression_)) Compress();
}

void TDigest::Compress() const {
  if (buffer_.empty()) return;
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  all.insert(all.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  std::sort(all.begin(), all.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean < b.mean;
            });

  centroids_.clear();
  double done = 0.0;  // weight fully merged so far
  Centroid current = all[0];
  double k_lo = ScaleK(0.0, compression_);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const double q_hi = (done + current.weight + all[i].weight) /
                        total_weight_;
    if (ScaleK(q_hi, compression_) - k_lo <= 1.0) {
      // Merge into the current cluster (weighted mean update).
      const double w = current.weight + all[i].weight;
      current.mean += (all[i].mean - current.mean) * all[i].weight / w;
      current.weight = w;
    } else {
      done += current.weight;
      centroids_.push_back(current);
      k_lo = ScaleK(done / total_weight_, compression_);
      current = all[i];
    }
  }
  centroids_.push_back(current);
}

double TDigest::Quantile(double phi) const {
  Compress();
  FWDECAY_CHECK(phi >= 0.0 && phi <= 1.0);
  if (centroids_.empty()) return 0.0;
  if (centroids_.size() == 1) return centroids_[0].mean;
  const double target = phi * total_weight_;
  // Walk centroids, interpolating between adjacent means with each
  // centroid's weight centered on its mean.
  double cum = 0.0;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cum + centroids_[i].weight / 2.0;
    if (target <= mid || i + 1 == centroids_.size()) {
      if (i == 0) return centroids_[0].mean;
      const double prev_mid =
          cum - centroids_[i - 1].weight / 2.0;
      const double frac =
          (target - prev_mid) / std::max(mid - prev_mid, 1e-300);
      return centroids_[i - 1].mean +
             std::clamp(frac, 0.0, 1.0) *
                 (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cum += centroids_[i].weight;
  }
  return centroids_.back().mean;
}

double TDigest::CdfAt(double value) const {
  Compress();
  if (centroids_.empty()) return 0.0;
  double cum = 0.0;
  for (const Centroid& c : centroids_) {
    if (c.mean > value) break;
    cum += c.weight;
  }
  return cum / total_weight_;
}

void TDigest::Merge(const TDigest& other) {
  other.Compress();
  for (const Centroid& c : other.centroids_) {
    buffer_.push_back(c);
    total_weight_ += c.weight;
    if (buffer_.size() >= static_cast<std::size_t>(compression_)) Compress();
  }
}

std::size_t TDigest::CentroidCount() const {
  Compress();
  return centroids_.size();
}

std::size_t TDigest::MemoryBytes() const {
  return (centroids_.capacity() + buffer_.capacity()) * sizeof(Centroid);
}

}  // namespace fwdecay
