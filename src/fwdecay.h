#ifndef FWDECAY_FWDECAY_H_
#define FWDECAY_FWDECAY_H_

// Umbrella header for the fwdecay library — everything a downstream user
// needs for forward-decayed analytics. Include narrower headers directly
// when compile time matters.
//
//   #include "fwdecay.h"
//   fwdecay::ForwardDecay<fwdecay::MonomialG> decay(
//       fwdecay::MonomialG(2.0), /*landmark=*/0.0);
//   fwdecay::DecayedMoments<fwdecay::MonomialG> moments(decay);
//
// Layers (see README.md):
//   core/      decay model, O(1) aggregates, HH/quantiles/distinct
//   sampling/  decayed samplers (Section V of the paper)
//   sketch/    summary substrates + backward-decay baselines
//   dsms/      mini stream engine with GSQL + UDAFs

#include "core/aggregates.h"
#include "core/concurrent_reservoir.h"
#include "core/count_distinct.h"
#include "core/decay.h"
#include "core/decaying_reservoir.h"
#include "core/exact_reference.h"
#include "core/forward_decay.h"
#include "core/heavy_hitters.h"
#include "core/histogram.h"
#include "core/landmark.h"
#include "core/quantiles.h"
#include "core/topk.h"
#include "sampling/biased_reservoir.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/weighted_reservoir.h"
#include "sampling/with_replacement.h"
#include "sketch/backward_sum.h"
#include "sketch/count_min.h"
#include "sketch/dominance_norm.h"
#include "sketch/exp_histogram.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/qdigest.h"
#include "sketch/sliding_hh.h"
#include "sketch/sliding_quantiles.h"
#include "sketch/space_saving.h"
#include "sketch/tdigest.h"
#include "sketch/waves.h"

#endif  // FWDECAY_FWDECAY_H_
