#ifndef FWDECAY_DSMS_PACKET_H_
#define FWDECAY_DSMS_PACKET_H_

#include <cstdint>

namespace fwdecay::dsms {

/// Protocol numbers used by the generator and query predicates.
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

/// One network packet record — the tuple type flowing through the mini
/// DSMS, mirroring the fields the paper's GSQL queries touch (time, the
/// destination pair, the packet length, and the protocol selector).
struct Packet {
  double time = 0.0;          // arrival timestamp, seconds
  std::uint32_t src_ip = 0;
  std::uint32_t dest_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dest_port = 0;
  std::uint32_t len = 0;      // bytes
  std::uint8_t protocol = kProtoTcp;
};

/// 64-bit key for the (destIP, destPort) group the paper's queries use.
inline std::uint64_t DestKey(const Packet& p) {
  return (static_cast<std::uint64_t>(p.dest_ip) << 16) | p.dest_port;
}

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_PACKET_H_
