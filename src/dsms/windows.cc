#include "dsms/windows.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace fwdecay::dsms {

SlidingRunner::SlidingRunner(const CompiledQuery* plan, double width_seconds,
                             double slide_seconds, EmitFn emit,
                             double slack_seconds)
    : plan_(plan),
      width_(width_seconds),
      slide_(slide_seconds),
      slack_(slack_seconds),
      emit_(std::move(emit)) {
  FWDECAY_CHECK(plan != nullptr);
  FWDECAY_CHECK(width_seconds > 0.0);
  FWDECAY_CHECK(slide_seconds > 0.0);
  FWDECAY_CHECK_MSG(slide_seconds <= width_seconds,
                    "slide must not exceed the window width");
  FWDECAY_CHECK(slack_seconds >= 0.0);
}

void SlidingRunner::Consume(const Packet& p) {
  // Window k covers [k*slide, k*slide + width): the packet belongs to
  // windows k in (t-width, t] / slide.
  const auto last =
      static_cast<std::int64_t>(std::floor(p.time / slide_));
  const auto first = static_cast<std::int64_t>(
      std::floor((p.time - width_) / slide_)) + 1;
  bool dropped = true;
  for (std::int64_t k = std::max(first, next_unemitted_); k <= last; ++k) {
    auto it = open_.find(k);
    if (it == open_.end()) {
      it = open_.emplace(k, plan_->NewExecution()).first;
    }
    it->second->Consume(p);
    dropped = false;
  }
  if (dropped) ++late_drops_;
  if (p.time > watermark_) {
    watermark_ = p.time;
    EmitReady();
  }
}

void SlidingRunner::EmitReady() {
  while (!open_.empty()) {
    const std::int64_t k = open_.begin()->first;
    const double window_end = static_cast<double>(k) * slide_ + width_;
    if (watermark_ < window_end + slack_) break;
    emit_(static_cast<double>(k) * slide_, window_end,
          open_.begin()->second->Finish());
    open_.erase(open_.begin());
    next_unemitted_ = k + 1;
  }
}

void SlidingRunner::Flush() {
  while (!open_.empty()) {
    const std::int64_t k = open_.begin()->first;
    emit_(static_cast<double>(k) * slide_,
          static_cast<double>(k) * slide_ + width_,
          open_.begin()->second->Finish());
    open_.erase(open_.begin());
    next_unemitted_ = k + 1;
  }
}

LatchedRunner::LatchedRunner(const CompiledQuery* plan, double bucket_seconds,
                             EmitFn emit)
    : bucket_seconds_(bucket_seconds),
      emit_(std::move(emit)),
      exec_(plan->NewExecution()) {
  FWDECAY_CHECK(bucket_seconds > 0.0);
}

void LatchedRunner::Consume(const Packet& p) {
  const auto bucket =
      static_cast<std::int64_t>(std::floor(p.time / bucket_seconds_));
  if (current_bucket_ == std::numeric_limits<std::int64_t>::min()) {
    current_bucket_ = bucket;
  }
  if (bucket > current_bucket_) {
    // Snapshot the cumulative state; Finish() is repeatable — it drains
    // the low-level table into the high level and renders, leaving the
    // accumulated aggregates intact.
    emit_(current_bucket_, exec_->Finish());
    current_bucket_ = bucket;
  }
  exec_->Consume(p);
}

void LatchedRunner::Flush() {
  if (current_bucket_ != std::numeric_limits<std::int64_t>::min()) {
    emit_(current_bucket_, exec_->Finish());
  }
}

}  // namespace fwdecay::dsms
