#ifndef FWDECAY_DSMS_TUMBLING_H_
#define FWDECAY_DSMS_TUMBLING_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "dsms/engine.h"

// Tumbling-window (time-bucket) execution — GS's continuous-query
// semantics: "an answer is provided for each minute-wise time-bucket"
// (Section I). The runner keeps one QueryExecution per open bucket and
// emits a bucket's ResultSet once the event-time watermark passes its
// end plus an out-of-order slack (the punctuation/heartbeat role of
// [36], [25] in the paper's introduction). Emitted buckets return their
// execution to a pool via QueryExecution::Reset(), so steady-state
// window turnover reuses warmed flat-table slots, arena-backed group
// shells, and batch scratch instead of reallocating (DESIGN.md §13.3).

namespace fwdecay::dsms {

class TumblingRunner {
 public:
  /// Called with each completed bucket's index (floor(time/width)) and
  /// its result table, in bucket order.
  using EmitFn = std::function<void(std::int64_t bucket, ResultSet result)>;

  /// `slack_seconds` is how far event time may run backwards: a bucket is
  /// finalized only when max-seen-time >= bucket_end + slack. Tuples for
  /// already-emitted buckets are counted in late_drops() and discarded.
  TumblingRunner(const CompiledQuery* plan, double bucket_seconds,
                 EmitFn emit, double slack_seconds = 0.0);

  /// Routes one packet to its bucket's execution; may emit buckets.
  void Consume(const Packet& p);

  /// Emits every still-open bucket (end of stream).
  void Flush();

  std::uint64_t late_drops() const { return late_drops_; }
  std::size_t open_buckets() const { return open_.size(); }

 private:
  void EmitReady();
  // Pops a pooled (already-Reset) execution, or builds the pool's first.
  std::unique_ptr<QueryExecution> AcquireExecution();
  // Resets an emitted bucket's execution and returns it to the pool.
  void ReleaseExecution(std::unique_ptr<QueryExecution> exec);

  const CompiledQuery* plan_;
  double bucket_seconds_;
  double slack_seconds_;
  EmitFn emit_;
  double watermark_ = -std::numeric_limits<double>::infinity();
  std::int64_t next_unemitted_ = std::numeric_limits<std::int64_t>::min();
  std::uint64_t late_drops_ = 0;
  std::map<std::int64_t, std::unique_ptr<QueryExecution>> open_;
  // Reset executions awaiting reuse; grows to the peak number of
  // simultaneously open buckets (bounded by the slack), never beyond.
  std::vector<std::unique_ptr<QueryExecution>> pool_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_TUMBLING_H_
