#ifndef FWDECAY_DSMS_NETGEN_H_
#define FWDECAY_DSMS_NETGEN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "dsms/batch.h"
#include "dsms/packet.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay::dsms {

/// Configuration for the synthetic packet-trace generator.
///
/// Substitutes for the paper's live 1.8 Gbit/s link (DESIGN.md §2): the
/// algorithms' costs depend on arrival rate, group cardinality and key
/// skew, all of which are explicit knobs here.
struct TraceConfig {
  /// Offered load in packets per second (drives timestamp spacing).
  double rate_pps = 100000.0;
  /// Number of distinct destination hosts (heavy-hitter candidates).
  std::uint32_t num_servers = 20000;
  /// Zipf skew of destination popularity (1.0 ~ classic internet traffic).
  double server_skew = 1.1;
  /// Distinct service ports per server.
  std::uint16_t ports_per_server = 4;
  /// Number of distinct client source addresses.
  std::uint32_t num_clients = 50000;
  /// Fraction of packets that are TCP (the rest are UDP).
  double tcp_fraction = 0.85;
  /// If > 0, packet delivery is delayed by up to this many seconds,
  /// producing out-of-order timestamps (Section VI-B scenarios).
  double reorder_jitter = 0.0;
  /// Poisson (exponential gaps) vs deterministic arrival spacing.
  bool poisson_arrivals = true;
  /// When true, packets are emitted by persistent *flows*: a flow pins
  /// its 5-tuple (client address/port -> server address/port, protocol)
  /// and emits a geometric number of packets, so the same keys repeat in
  /// bursts the way real TCP connections do. When false (default) every
  /// packet draws fresh endpoints.
  bool flow_structured = false;
  /// Mean packets per flow (geometric); flow_structured only.
  double mean_flow_len = 20.0;
  /// Target number of concurrently active flows; flow_structured only.
  std::uint32_t target_active_flows = 1000;
  std::uint64_t seed = 42;
};

/// Streaming generator of synthetic packets with Zipf-skewed destinations
/// and realistic bimodal packet sizes. Deterministic for a fixed config.
class PacketGenerator {
 public:
  explicit PacketGenerator(const TraceConfig& config);

  /// Returns the next packet (timestamps non-decreasing unless
  /// reorder_jitter > 0, in which case delivery order is perturbed while
  /// embedded timestamps remain the true arrival instants).
  Packet Next();

  /// Convenience: materializes the next `n` packets.
  std::vector<Packet> Generate(std::size_t n);

  /// Appends up to `max_packets` packets to `*batch` (also bounded by
  /// the batch's remaining capacity); returns the number appended. The
  /// packet sequence is identical to repeated Next() calls, so batched
  /// and per-tuple consumers see the same trace.
  std::size_t NextBatch(PacketBatch* batch, std::size_t max_packets);

  /// Convenience: the next `n` packets as one batch of capacity `n`.
  PacketBatch GenerateBatch(std::size_t n);

  const TraceConfig& config() const { return config_; }

 private:
  struct Flow {
    std::uint32_t src_ip;
    std::uint32_t dest_ip;
    std::uint16_t src_port;
    std::uint16_t dest_port;
    std::uint8_t protocol;
  };

  Packet MakePacket();
  Flow MakeFlow();

  TraceConfig config_;
  Rng rng_;
  // Delivery-delay randomness is drawn from a separate generator so that
  // the packet *content* for a given seed is identical whether or not
  // reordering is enabled — controlled A/B experiments rely on this.
  Rng delay_rng_;
  ZipfGenerator server_zipf_;
  double clock_ = 0.0;
  // Reorder buffer: packets are released once their (true time + jitter
  // delay) passes the generator clock.
  struct Delayed {
    double release_at;
    Packet packet;
  };
  std::deque<Delayed> delayed_;
  std::vector<Flow> flows_;  // active flows (flow_structured only)
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_NETGEN_H_
