#ifndef FWDECAY_DSMS_BATCH_H_
#define FWDECAY_DSMS_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsms/packet.h"
#include "util/check.h"

// Columnar packet batches: the unit of the batched ingest path.
//
// A PacketBatch is a fixed-capacity structure-of-arrays transposition of
// Packet: one contiguous column per field. The batched evaluators
// (expr.h) and the engine's Consume(const PacketBatch&) walk these
// columns with plain indexed loops — no per-tuple dispatch, no per-tuple
// allocation — which is where the line-rate story of Section VI comes
// from once forward decay has made the per-item work O(1).

namespace fwdecay::dsms {

/// Fixed-capacity structure-of-arrays batch of packets.
///
/// Append() until full(), hand the batch to a consumer, Clear(), repeat.
/// Clear() keeps the column capacity, so a reused batch allocates only
/// on its first fill.
class PacketBatch {
 public:
  /// Default capacity: large enough to amortize per-batch setup, small
  /// enough to stay cache-resident across the evaluator passes.
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit PacketBatch(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {
    FWDECAY_CHECK_MSG(capacity > 0, "PacketBatch capacity must be positive");
    time_.reserve(capacity);
    src_ip_.reserve(capacity);
    dest_ip_.reserve(capacity);
    src_port_.reserve(capacity);
    dest_port_.reserve(capacity);
    len_.reserve(capacity);
    protocol_.reserve(capacity);
  }

  /// Appends one packet; returns false (batch unchanged) when full.
  bool Append(const Packet& p) {
    if (full()) return false;
    time_.push_back(p.time);
    src_ip_.push_back(p.src_ip);
    dest_ip_.push_back(p.dest_ip);
    src_port_.push_back(p.src_port);
    dest_port_.push_back(p.dest_port);
    len_.push_back(p.len);
    protocol_.push_back(p.protocol);
    return true;
  }

  /// Bulk gather: appends rows rows[0..n) of `src` in order. The
  /// pipeline's routing stage builds per-shard sub-batches with this —
  /// one pass per column over the gathered indices, no per-row Packet
  /// materialization. The caller guarantees the rows fit
  /// (size() + n <= capacity()) and are valid indices into src.
  void AppendSelected(const PacketBatch& src, const std::uint32_t* rows,
                      std::size_t n) {
    FWDECAY_DCHECK(size() + n <= capacity_);
    for (std::size_t i = 0; i < n; ++i) time_.push_back(src.time_[rows[i]]);
    for (std::size_t i = 0; i < n; ++i) {
      src_ip_.push_back(src.src_ip_[rows[i]]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      dest_ip_.push_back(src.dest_ip_[rows[i]]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      src_port_.push_back(src.src_port_[rows[i]]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      dest_port_.push_back(src.dest_port_[rows[i]]);
    }
    for (std::size_t i = 0; i < n; ++i) len_.push_back(src.len_[rows[i]]);
    for (std::size_t i = 0; i < n; ++i) {
      protocol_.push_back(src.protocol_[rows[i]]);
    }
  }

  /// Empties the batch; column capacity is retained.
  void Clear() {
    time_.clear();
    src_ip_.clear();
    dest_ip_.clear();
    src_port_.clear();
    dest_port_.clear();
    len_.clear();
    protocol_.clear();
  }

  std::size_t size() const { return time_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return time_.empty(); }
  bool full() const { return time_.size() >= capacity_; }

  /// Row-wise view of one packet (for AoS consumers and tests).
  Packet Get(std::size_t i) const {
    FWDECAY_DCHECK(i < size());
    Packet p;
    p.time = time_[i];
    p.src_ip = src_ip_[i];
    p.dest_ip = dest_ip_[i];
    p.src_port = src_port_[i];
    p.dest_port = dest_port_[i];
    p.len = len_[i];
    p.protocol = protocol_[i];
    return p;
  }

  // Column accessors (contiguous, size() entries each).
  const double* time() const { return time_.data(); }
  const std::uint32_t* src_ip() const { return src_ip_.data(); }
  const std::uint32_t* dest_ip() const { return dest_ip_.data(); }
  const std::uint16_t* src_port() const { return src_port_.data(); }
  const std::uint16_t* dest_port() const { return dest_port_.data(); }
  const std::uint32_t* len() const { return len_.data(); }
  const std::uint8_t* protocol() const { return protocol_.data(); }

 private:
  std::size_t capacity_;
  std::vector<double> time_;
  std::vector<std::uint32_t> src_ip_;
  std::vector<std::uint32_t> dest_ip_;
  std::vector<std::uint16_t> src_port_;
  std::vector<std::uint16_t> dest_port_;
  std::vector<std::uint32_t> len_;
  std::vector<std::uint8_t> protocol_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_BATCH_H_
