#ifndef FWDECAY_DSMS_ENGINE_H_
#define FWDECAY_DSMS_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dsms/agg.h"
#include "dsms/expr.h"
#include "dsms/packet.h"
#include "dsms/parser.h"
#include "dsms/value.h"

// Query compilation and execution for the mini DSMS.
//
// The pipeline mirrors the slice of GS the paper exercises: a stream
// selection (FROM TCP/UDP/PKT plus WHERE), a group-by over arbitrary
// scalar expressions (time buckets are just `time/60`), and per-group
// aggregates — built-in or UDAF. Like GS, the engine can split
// aggregation into two levels (Figure 2(a) vs 2(b)): a fixed-size
// direct-mapped low-level table absorbs most updates and evicts partial
// groups to the high-level hash map on collision.

namespace fwdecay::dsms {

/// Result table produced by QueryExecution::Finish().
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Renders the table for human consumption.
  std::string ToString() const;
};

class QueryExecution;

/// A validated, bound query plan. Immutable and reusable: create any
/// number of executions from one compiled query.
class CompiledQuery {
 public:
  struct Options {
    /// Enables the GS-style two-level aggregation split.
    bool two_level = false;
    /// Number of slots in the low-level direct-mapped table.
    std::size_t low_level_slots = 4096;
  };

  /// Compiles GSQL text; returns nullptr and sets *error on failure.
  static std::unique_ptr<CompiledQuery> Compile(const std::string& gsql,
                                                std::string* error);
  static std::unique_ptr<CompiledQuery> Compile(const std::string& gsql,
                                                std::string* error,
                                                Options options);

  /// Compiles an already-parsed query.
  static std::unique_ptr<CompiledQuery> CompileParsed(Query query,
                                                      std::string* error,
                                                      Options options);

  /// Starts a fresh execution of this plan. The execution holds a
  /// reference to this plan: the CompiledQuery must outlive every
  /// QueryExecution created from it.
  std::unique_ptr<QueryExecution> NewExecution() const;

  const Options& options() const { return options_; }
  std::size_t num_aggregates() const { return agg_names_.size(); }

 private:
  friend class QueryExecution;

  struct OutputItem {
    // Bound post-aggregation expression: kGroupRef/kAggRef placeholders
    // over the group key and finalized aggregates.
    std::unique_ptr<Expr> post;
    std::string column_name;
    std::string source_text;  // pre-binding text, for ORDER BY matching
  };

  CompiledQuery() = default;

  Options options_;
  std::uint8_t protocol_filter_ = 0;     // 0 = all, else exact match
  std::unique_ptr<Expr> where_;          // may be null
  std::vector<std::unique_ptr<Expr>> group_exprs_;
  std::vector<std::string> agg_names_;   // aggregate function per slot
  // Argument expressions per aggregate slot.
  std::vector<std::vector<std::unique_ptr<Expr>>> agg_args_;
  std::vector<OutputItem> outputs_;
  std::unique_ptr<Expr> having_;         // bound post expr; may be null
  // Output column index + descending flag, applied in order.
  std::vector<std::pair<std::size_t, bool>> order_by_;
  std::optional<std::int64_t> limit_;
};

/// Mutable state of one run: feed packets, then collect results.
class QueryExecution {
 public:
  explicit QueryExecution(const CompiledQuery* plan);
  ~QueryExecution();

  QueryExecution(const QueryExecution&) = delete;
  QueryExecution& operator=(const QueryExecution&) = delete;

  /// Processes one packet (filter -> group -> aggregate update).
  void Consume(const Packet& p);

  /// Flushes the low level and produces the final result table, sorted
  /// by group key for determinism.
  ResultSet Finish();

  /// Packets that passed the filter so far.
  std::uint64_t tuples_aggregated() const { return tuples_aggregated_; }

  /// Distinct groups currently held (low + high level).
  std::size_t GroupCount() const;

  /// Evictions from the low-level table (two-level mode only).
  std::uint64_t low_level_evictions() const { return low_level_evictions_; }

 private:
  struct Group;
  struct LowSlot;

  Group* FindOrCreateHighGroup(std::uint64_t hash,
                               std::vector<Value>&& key);
  void UpdateGroup(Group& group, const Packet& p);
  void EvictToHigh(LowSlot& slot);

  const CompiledQuery* plan_;
  std::uint64_t tuples_aggregated_ = 0;
  std::uint64_t low_level_evictions_ = 0;

  // Storage details live in the .cc (pimpl-free; concrete types are
  // private nested structs).
  std::vector<LowSlot> low_table_;
  struct HighTable;
  std::unique_ptr<HighTable> high_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_ENGINE_H_
