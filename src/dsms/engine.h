#ifndef FWDECAY_DSMS_ENGINE_H_
#define FWDECAY_DSMS_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dsms/agg.h"
#include "dsms/batch.h"
#include "dsms/column.h"
#include "dsms/expr.h"
#include "dsms/packet.h"
#include "dsms/parser.h"
#include "dsms/value.h"
#include "util/bytes.h"
#include "util/metrics.h"
#include "util/sched.h"
#include "util/thread_annotations.h"

// Query compilation and execution for the mini DSMS.
//
// The pipeline mirrors the slice of GS the paper exercises: a stream
// selection (FROM TCP/UDP/PKT plus WHERE), a group-by over arbitrary
// scalar expressions (time buckets are just `time/60`), and per-group
// aggregates — built-in or UDAF. Like GS, the engine can split
// aggregation into two levels (Figure 2(a) vs 2(b)): a fixed-size
// direct-mapped low-level table absorbs most updates and evicts partial
// groups to the high level on collision. The high level is an
// open-addressing flat table over arena-backed group shells
// (DESIGN.md §13.1/§13.3), keyed by the 64-bit group hash the batch
// pipeline already computes.

namespace fwdecay::dsms {

/// Result table produced by QueryExecution::Finish().
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Renders the table for human consumption.
  std::string ToString() const;
};

/// Overload-shedding policy: bounds the number of groups an execution
/// holds. When a new group would exceed `max_groups`, the engine evicts
/// the group with the smallest *forward-decayed weight* — the sum over
/// the group's tuples of g(t_i - L) = exp(decay_alpha * (t_i - landmark))
/// — and reports it through groups_shed()/tuples_shed() instead of
/// aborting. Forward decay makes this principled: the static weight of a
/// tuple only grows with its timestamp, so the minimum-weight group is
/// the one the decayed query already values least.
struct OverloadPolicy {
  /// Maximum live groups (low + high level); 0 disables shedding.
  std::size_t max_groups = 0;
  /// Exponential forward-decay rate for group weights; 0 degrades the
  /// weight to a plain tuple count (evict the smallest group).
  double decay_alpha = 0.0;
  /// Forward-decay landmark L (only the weight *scale* depends on it).
  double landmark = 0.0;
};

class QueryExecution;

/// A validated, bound query plan. Immutable and reusable: create any
/// number of executions from one compiled query.
class CompiledQuery {
 public:
  struct Options {
    /// Enables the GS-style two-level aggregation split.
    bool two_level = false;
    /// Number of slots in the low-level direct-mapped table.
    std::size_t low_level_slots = 4096;
  };

  /// Compiles GSQL text; returns nullptr and sets *error on failure.
  static std::unique_ptr<CompiledQuery> Compile(const std::string& gsql,
                                                std::string* error);
  static std::unique_ptr<CompiledQuery> Compile(const std::string& gsql,
                                                std::string* error,
                                                Options options);

  /// Compiles an already-parsed query.
  static std::unique_ptr<CompiledQuery> CompileParsed(Query query,
                                                      std::string* error,
                                                      Options options);

  /// Starts a fresh execution of this plan. The execution holds a
  /// reference to this plan: the CompiledQuery must outlive every
  /// QueryExecution created from it.
  std::unique_ptr<QueryExecution> NewExecution() const;

  const Options& options() const { return options_; }
  std::size_t num_aggregates() const { return agg_names_.size(); }

  /// Deterministic structural hash of the plan (clauses, options,
  /// aggregate slots). Stored in snapshots so Restore() can reject a
  /// snapshot taken under a different query.
  std::uint64_t Fingerprint() const;

 private:
  friend class QueryExecution;
  friend class ShardedQueryExecution;   // router reads filter + group exprs
  friend class PipelinedQueryExecution;  // same router, async shard stage

  struct OutputItem {
    // Bound post-aggregation expression: kGroupRef/kAggRef placeholders
    // over the group key and finalized aggregates.
    std::unique_ptr<Expr> post;
    std::string column_name;
    std::string source_text;  // pre-binding text, for ORDER BY matching
  };

  CompiledQuery() = default;

  Options options_;
  std::uint8_t protocol_filter_ = 0;     // 0 = all, else exact match
  std::unique_ptr<Expr> where_;          // may be null
  std::vector<std::unique_ptr<Expr>> group_exprs_;
  std::vector<std::string> agg_names_;   // aggregate function per slot
  // Argument expressions per aggregate slot.
  std::vector<std::vector<std::unique_ptr<Expr>>> agg_args_;
  std::vector<OutputItem> outputs_;
  std::unique_ptr<Expr> having_;         // bound post expr; may be null
  // Output column index + descending flag, applied in order.
  std::vector<std::pair<std::size_t, bool>> order_by_;
  std::optional<std::int64_t> limit_;
};

/// Mutable state of one run: feed packets, then collect results.
class QueryExecution {
 public:
  explicit QueryExecution(const CompiledQuery* plan);
  ~QueryExecution();

  QueryExecution(const QueryExecution&) = delete;
  QueryExecution& operator=(const QueryExecution&) = delete;

  /// Processes one packet. Implemented as a one-element batch through
  /// Consume(const PacketBatch&), so both entry points share one code
  /// path and produce bit-identical state.
  void Consume(const Packet& p);

  /// Processes a columnar batch: filter (protocol + WHERE) over the
  /// whole batch, group-key hashing over the surviving selection, then
  /// grouped aggregate updates over runs of consecutive equal-key rows.
  /// Produces exactly the state a Consume(Packet) loop over the same
  /// rows would — same FP accumulation order, same RNG draw order, same
  /// eviction and shedding decisions (DESIGN.md §8).
  void Consume(const PacketBatch& batch);

  /// Flushes the low level and produces the final result table, sorted
  /// by group key for determinism.
  ResultSet Finish();

  /// Packets that passed the filter so far.
  std::uint64_t tuples_aggregated() const { return tuples_aggregated_; }

  /// Packets offered to Consume() so far (before filtering). This is the
  /// input-stream position recorded in snapshots: recovery re-feeds the
  /// trace from this offset.
  std::uint64_t packets_consumed() const { return packets_consumed_; }

  /// Distinct groups currently held (low + high level). O(1): both
  /// levels keep cached occupancy counts (audited by CheckInvariants),
  /// so the metrics flush can publish a group-count gauge on the hot
  /// path without walking the tables.
  std::size_t GroupCount() const { return high_group_count_ + low_occupied_; }

  /// Evictions from the low-level table (two-level mode only).
  std::uint64_t low_level_evictions() const { return low_level_evictions_; }

  /// Installs (or replaces) the overload-shedding policy. Takes effect
  /// on the next Consume(); group weights accumulate from the point the
  /// policy's decay parameters are set.
  void SetOverloadPolicy(const OverloadPolicy& policy) { policy_ = policy; }
  const OverloadPolicy& overload_policy() const { return policy_; }

  /// Groups evicted (and tuples lost inside them) by overload shedding.
  std::uint64_t groups_shed() const { return groups_shed_; }
  std::uint64_t tuples_shed() const { return tuples_shed_; }

  /// Writes a crash-safe snapshot of the full execution state — both
  /// group-table levels, every aggregate accumulator, the shedding
  /// policy and counters, and the input-stream position — to `path` via
  /// write-to-temp + fsync + atomic rename. On failure returns false
  /// with *error set; any existing snapshot at `path` is untouched.
  bool Checkpoint(const std::string& path, std::string* error) const;

  /// Serializes the same FWDSNAP1 image Checkpoint() writes into *out
  /// instead of a file. The server embeds these images inside its own
  /// snapshot files (one per registered query) and uses them to clone
  /// executions for non-destructive result polls (DESIGN.md §11).
  bool CheckpointBytes(std::vector<std::uint8_t>* out,
                       std::string* error) const;

  /// Replaces this execution's state with the snapshot at `path`.
  /// Verifies the CRC32C frame and the plan fingerprint; on any failure
  /// returns false with *error set and leaves the execution unusable
  /// (callers discard it). Feeding the trace from packets_consumed()
  /// onward then reproduces the uninterrupted run exactly.
  bool Restore(const std::string& path, std::string* error);

  /// As Restore(), but from an in-memory FWDSNAP1 image (the bytes
  /// CheckpointBytes() produced). Same validation, same guarantees.
  bool RestoreBytes(const std::uint8_t* data, std::size_t size,
                    std::string* error);

  /// Representation audit of both group-table levels (DESIGN.md §7):
  /// every group is stored under the hash of its key, low-level slots sit
  /// at hash % slots, every flat-table group is reachable from its home
  /// slot through an unbroken linear-probe chain, no two groups share a
  /// key, aggregate arity matches the plan, group weights are
  /// non-negative forward-decay sums, the cached counts are exact, and an
  /// installed shedding bound is respected. Aborts via FWDECAY_CHECK on
  /// violation.
  void CheckInvariants() const;

  /// Returns the execution to its freshly-constructed state while
  /// retaining every capacity the previous run warmed up: the flat
  /// table's slot arrays and arena-backed group shells, low-level slot
  /// buffers, and all batch scratch. Tumbling windows reuse one
  /// execution per window through this instead of reallocating
  /// (DESIGN.md §13.3). Pending metric deltas are flushed first; the
  /// policy installed via SetOverloadPolicy() is kept.
  void Reset();

 private:
  friend class ShardedQueryExecution;
  friend class PipelinedQueryExecution;

  struct Group;
  struct LowSlot;

  // Looks the key up in the flat high table; admits a pooled shell
  // (shedding first under a bounded policy) when absent. The key is
  // copied into the shell's capacity-retaining vector, so the caller's
  // buffer survives for the next run.
  Group* FindOrCreateHighGroup(std::uint64_t hash,
                               const std::vector<Value>& key);
  // Applies one run of consecutive equal-key rows to a group: forward
  // weights per row in order, then one UpdateBatch per aggregate slot
  // over the run. The batched hot path — must not allocate per tuple
  // (scripts/lint.py rule `hotpath`).
  void UpdateGroup(Group& group, const PacketBatch& batch,
                   std::size_t run_begin, std::size_t run_len);
  // Groups and aggregates a pre-filtered selection: sel_[0..n) holds the
  // surviving batch rows; key/argument columns are evaluated densely
  // over it and applied run by run.
  void AggregateSelection(const PacketBatch& batch, std::size_t n);
  // Sharded entry point (router already applied protocol + WHERE):
  // `rows[0..n)` are ascending batch rows this execution owns.
  void ConsumeFiltered(const PacketBatch& batch, const std::uint32_t* rows,
                       std::size_t n);
  // Evicts every occupied low-level slot to the high level (the first
  // phase of Finish(); shards flush before merging).
  void FlushLowLevel();
  // Moves/merges every high-level group out of `other` into this
  // execution, in deterministic key order. Groups absent here are moved
  // wholesale (no aggregate Merge call — works for non-mergeable UDAFs
  // as long as the key spaces are disjoint, which shard routing
  // guarantees); colliding keys merge slot by slot. `other` is left with
  // an empty high level. Shedding policy is NOT consulted.
  void MergeFrom(QueryExecution& other);
  void EvictToHigh(LowSlot& slot);
  double ForwardWeight(double ts) const;
  void ShedLowestWeightGroup();
  // Publishes the counter deltas accumulated since the previous flush
  // into the process-wide metrics registry and refreshes the group-count
  // gauge + decayed tuple rate. Called every kMetricsFlushPeriod batches
  // plus at Finish()/destruction; a FWDECAY_METRICS=OFF build compiles
  // it (and its call sites) away entirely.
  void FlushMetrics();
  // Rebinds the counter/gauge handles to the per-shard labelled
  // families (fwdecay_shard_*{shard="i"}); called once per shard by
  // ShardedQueryExecution before any ingest.
  void UseShardMetrics(std::size_t shard_index);
  bool SerializeGroup(const Group& group, ByteWriter* writer,
                      std::string* error) const;
  bool RestoreGroup(ByteReader* reader, Group* group);

  const CompiledQuery* plan_;
  OverloadPolicy policy_;
  std::uint64_t packets_consumed_ = 0;
  std::uint64_t tuples_aggregated_ = 0;
  std::uint64_t low_level_evictions_ = 0;
  std::uint64_t groups_shed_ = 0;
  std::uint64_t tuples_shed_ = 0;
  std::size_t high_group_count_ = 0;
  std::size_t low_occupied_ = 0;  // occupied low-level slots (cached)

  // --- Self-instrumentation (util/metrics.h; DESIGN.md §9) ------------
  // Resolved-once registry handles. The hot path touches only the plain
  // members above; FlushMetrics() publishes deltas every
  // kMetricsFlushPeriod batches and the ns-per-batch reservoir samples
  // one batch in kMetricsSamplePeriod, so steady-state ingest pays a few
  // scalar ops per batch and the acceptance bound (<=5% ns/packet) holds
  // even on the one-packet-per-batch path.
  struct MetricsHandles {
    metrics::Counter* packets = nullptr;
    metrics::Counter* batches = nullptr;
    metrics::Counter* tuples = nullptr;
    metrics::Counter* evictions = nullptr;
    metrics::Counter* groups_shed = nullptr;
    metrics::Counter* tuples_shed = nullptr;
    metrics::Gauge* groups = nullptr;
    metrics::DecayedRate* tuple_rate = nullptr;
    metrics::LatencyReservoir* batch_ns = nullptr;
  };
  static constexpr std::uint64_t kMetricsFlushPeriod = 64;
  static constexpr std::uint64_t kMetricsSamplePeriod = 64;
  MetricsHandles metrics_;
  std::uint64_t metrics_batch_seq_ = 0;
  // Counter values as of the previous FlushMetrics() (so a flush
  // publishes exact deltas; Restore() resyncs these to the restored
  // counters).
  std::uint64_t flushed_packets_ = 0;
  std::uint64_t flushed_batches_ = 0;
  std::uint64_t flushed_tuples_ = 0;
  std::uint64_t flushed_evictions_ = 0;
  std::uint64_t flushed_groups_shed_ = 0;
  std::uint64_t flushed_tuples_shed_ = 0;

  // Storage details live in the .cc (pimpl-free; concrete types are
  // private nested structs).
  std::vector<LowSlot> low_table_;
  // size-1 when the low table is a power of two (the 4096 default):
  // `hash & low_mask_` then equals `hash % size` bit for bit, without
  // the per-run integer division. 0 = size not a power of two, use %.
  std::size_t low_mask_ = 0;
  struct HighTable;
  std::unique_ptr<HighTable> high_;

  // Batched-ingest scratch, reused across Consume(batch) calls so the
  // steady state allocates nothing per batch. Pure working memory —
  // never part of a snapshot (FWDSNAP1 layout is unchanged).
  BatchEvalScratch batch_scratch_;
  std::vector<std::uint32_t> sel_;        // surviving batch rows
  std::vector<std::uint32_t> row_index_;  // iota over the selection
  std::vector<std::uint64_t> hashes_;     // group hash per selected row
  std::vector<ValueColumn> key_cols_;     // per group expr, dense
  // Per aggregate slot, per argument: dense column over the selection.
  std::vector<std::vector<ValueColumn>> arg_cols_;
  std::vector<Value> key_scratch_;        // run key under construction
  PacketBatch single_{1};                 // Consume(Packet) wrapper
};

/// Thread-safe facade over QueryExecution — the deployment shape where
/// several ingest threads feed one standing query and a control thread
/// checkpoints or reads stats. A single mutex suffices for the same
/// reason as ConcurrentDecayingReservoir: each Consume() is dominated by
/// expression evaluation and aggregate updates, not by the lock.
///
/// The lock discipline is declared with thread-safety annotations: the
/// wrapped execution is PT_GUARDED_BY(mu_), so a clang build with
/// -DFWDECAY_THREAD_SAFETY=ON proves at compile time that no code path
/// reaches the underlying (thread-compatible) QueryExecution without
/// holding the lock.
class ConcurrentQueryExecution {
 public:
  /// The plan must outlive this object (as with NewExecution()).
  explicit ConcurrentQueryExecution(const CompiledQuery& plan)
      : exec_(plan.NewExecution()) {}

  /// Processes one packet; safe to call from any thread.
  void Consume(const Packet& p) FWDECAY_EXCLUDES(mu_) {
    // fwdecay: hotpath-lock-ok(this facade's whole contract is serializing ingest behind one lock)
    MutexLock lock(mu_);
    exec_->Consume(p);
  }

  /// Processes a columnar batch under the lock; safe from any thread.
  /// Amortizes the lock acquisition over the whole batch.
  void Consume(const PacketBatch& batch) FWDECAY_EXCLUDES(mu_) {
    // fwdecay: hotpath-lock-ok(one acquisition amortized over the whole batch)
    MutexLock lock(mu_);
    exec_->Consume(batch);
  }

  /// Flushes and produces the final result table (serializes against
  /// concurrent Consume() calls; results reflect a consistent cut).
  ResultSet Finish() FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return exec_->Finish();
  }

  std::uint64_t packets_consumed() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return exec_->packets_consumed();
  }

  std::uint64_t tuples_aggregated() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return exec_->tuples_aggregated();
  }

  std::size_t GroupCount() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return exec_->GroupCount();
  }

  void SetOverloadPolicy(const OverloadPolicy& policy)
      FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    exec_->SetOverloadPolicy(policy);
  }

  /// Consistent snapshot concurrent with ingest (the snapshot is taken
  /// under the lock; the write itself is the usual atomic-rename).
  bool Checkpoint(const std::string& path, std::string* error) const
      FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return exec_->Checkpoint(path, error);
  }

  bool Restore(const std::string& path, std::string* error)
      FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return exec_->Restore(path, error);
  }

  /// Group-table audit under the lock, so stress tests can interleave
  /// audits with concurrent ingest.
  void CheckInvariants() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    exec_->CheckInvariants();
  }

 private:
  mutable Mutex mu_;
  std::unique_ptr<QueryExecution> exec_ FWDECAY_PT_GUARDED_BY(mu_);
};

/// Hash-partitioned parallel execution: N independent per-shard
/// QueryExecutions, each behind its own mutex. The caller's thread acts
/// as the router — it filters the batch and computes group-key hashes
/// lock-free, partitions the surviving rows by a *remixed* group hash
/// (independent of the low-level table's `hash % slots` indexing, so
/// shard routing does not bias slot occupancy), and applies each
/// shard's rows under that shard's lock only. Ingest threads working on
/// different shards never contend.
///
/// Because a group's key always hashes to the same shard, every group
/// is owned wholly by one shard. Finish() flushes each shard's low
/// level and moves the disjoint group sets into one merged execution —
/// forward decay makes this exact: group state is a sum of static
/// weights g(t_i - L), so a partitioned sum equals the stream's sum
/// (Section VI-B). With an OverloadPolicy installed, each shard
/// enforces `max_groups` on its own table, so the sharded execution
/// retains at most num_shards * max_groups groups (DESIGN.md §8).
class ShardedQueryExecution {
 public:
  /// The plan must outlive this object (as with NewExecution()).
  ShardedQueryExecution(const CompiledQuery& plan, std::size_t num_shards);

  ShardedQueryExecution(const ShardedQueryExecution&) = delete;
  ShardedQueryExecution& operator=(const ShardedQueryExecution&) = delete;

  /// Routes one batch across the shards; safe to call concurrently from
  /// any number of ingest threads.
  void Consume(const PacketBatch& batch);

  /// Flushes and merges every shard, then finalizes. Call once, after
  /// ingest has quiesced: the merge moves group state out of the shards.
  ResultSet Finish();

  /// Installs the policy on every shard; each shard bounds its own
  /// group table, so the total bound is num_shards * max_groups.
  void SetOverloadPolicy(const OverloadPolicy& policy);

  /// Packets offered to Consume() (router-level, pre-filter).
  std::uint64_t packets_consumed() const {
    // fwdecay: relaxed-ok(independent monotone cell; readers need a recent count, not an ordering)
    return packets_offered_.load(std::memory_order_relaxed);
  }

  // Shard-summed counters (each shard read under its lock).
  std::uint64_t tuples_aggregated() const;
  std::uint64_t low_level_evictions() const;
  std::uint64_t groups_shed() const;
  std::uint64_t tuples_shed() const;
  std::size_t GroupCount() const;

  std::size_t num_shards() const { return shards_.size(); }

  /// Runs the group-table audit on every shard, each under its lock.
  void CheckInvariants() const;

 private:
  struct Shard {
    mutable Mutex mu;
    std::unique_ptr<QueryExecution> exec FWDECAY_PT_GUARDED_BY(mu);
  };

  const CompiledQuery* plan_;
  std::vector<std::unique_ptr<Shard>> shards_;  // Mutex is not movable
  sched::Atomic<std::uint64_t> packets_offered_{0};
};

/// Shared-nothing pipelined execution (DESIGN.md §14) — the scaling
/// successor to ShardedQueryExecution's mutex-per-shard router
/// ("router-v1" in BENCH_ingest.json; this class is "spsc-v2").
///
/// One routing stage (the caller's thread) filters each batch, hashes
/// the group keys, partitions the surviving rows by the remixed group
/// hash (simd::ShardIndexU64), gathers each shard's rows into a
/// per-shard sub-batch, and transfers that batch *whole* — by move,
/// through a bounded SPSC ring — to the shard's worker thread. Each
/// worker owns its QueryExecution outright: after construction no shard
/// state is touched by two threads, so the ingest path has no locks at
/// all. Consumed batches flow back to the router on a second SPSC ring
/// for reuse, making the steady state allocation-free end to end.
///
/// Finish() runs off the hot path: it quiesces the pipeline (flush
/// partial sub-batches, signal stop, join workers) and then performs
/// the same FlushLowLevel + whole-group MergeFrom merge as the sharded
/// router. Shard key spaces are disjoint and forward decay needs no
/// rescaling on merge (Section VI-B), so the merged result is
/// bit-identical to the mutex'd router's — and, for single-level
/// plans, to the single-threaded reference (tests/spsc_ring_test.cc
/// asserts both, including under schedule exploration).
///
/// Threading contract: Consume() from ONE router thread (the SPSC rings
/// are single-producer/single-consumer by construction); Quiesce(),
/// Finish() and the stat accessors from that same thread after ingest
/// stops. packets_consumed() alone is safe at any time.
class PipelinedQueryExecution {
 public:
  struct Options {
    std::size_t num_shards = 2;
    /// Slots per shard ring, a power of two >= 2. Bounds in-flight
    /// memory at ~2 * ring_capacity * batch bytes per shard and sets
    /// how far the router can run ahead before backpressure.
    std::size_t ring_capacity = 64;
    /// Rows per gathered sub-batch handed to a worker.
    std::size_t batch_capacity = PacketBatch::kDefaultCapacity;
    /// Pins worker i to core (i + 1) % hardware_concurrency (Linux
    /// only; ignored elsewhere and under schedule exploration). The
    /// router stays on the caller's thread, so core 0 is left to it.
    bool pin_cores = false;
  };

  /// The plan must outlive this object. Workers start immediately.
  PipelinedQueryExecution(const CompiledQuery& plan, const Options& options);
  ~PipelinedQueryExecution();

  PipelinedQueryExecution(const PipelinedQueryExecution&) = delete;
  PipelinedQueryExecution& operator=(const PipelinedQueryExecution&) = delete;

  /// Routes one batch: filter + hash + partition on the calling thread,
  /// full sub-batches handed to the shard workers. Single producer —
  /// see the threading contract above.
  void Consume(const PacketBatch& batch);

  /// Installs the policy on every shard (each bounds its own table, so
  /// the total bound is num_shards * max_groups). Must be called before
  /// the first Consume(): the ring handoff publishes it to the workers.
  void SetOverloadPolicy(const OverloadPolicy& policy);

  /// Drains the pipeline: flushes partial sub-batches, signals stop,
  /// joins the workers and freezes the shard-summed stats. Idempotent;
  /// Finish() calls it implicitly.
  void Quiesce();

  /// Quiesces, then merges the disjoint shard states and finalizes.
  /// Call once, after ingest has stopped.
  ResultSet Finish();

  /// Packets offered to Consume() (router-level, pre-filter).
  std::uint64_t packets_consumed() const { return packets_offered_; }

  // Shard-summed counters; valid once Quiesce() has run.
  std::uint64_t tuples_aggregated() const;
  std::uint64_t low_level_evictions() const;
  std::uint64_t groups_shed() const;
  std::uint64_t tuples_shed() const;
  std::size_t GroupCount() const;

  std::size_t num_shards() const { return shards_.size(); }

  /// Group-table audit on every shard; valid once Quiesce() has run.
  void CheckInvariants() const;

 private:
  struct Shard;  // rings + worker + owned QueryExecution (engine.cc)

  void DispatchPending(Shard& shard);
  void WorkerLoop(Shard& shard, std::size_t index);
  std::uint64_t SumQuiesced(std::uint64_t (QueryExecution::*getter)()
                                const) const;

  const CompiledQuery* plan_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  sched::Atomic<bool> stop_{false};
  bool quiesced_ = false;
  bool finished_ = false;
  std::uint64_t packets_offered_ = 0;  // router-thread counter

  // Router scratch, capacity-retained across batches (single producer,
  // so plain members — no thread_local needed).
  BatchEvalScratch eval_scratch_;
  std::vector<std::uint32_t> sel_;
  std::vector<ValueColumn> key_cols_;
  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint32_t> shard_ids_;
  std::vector<std::vector<std::uint32_t>> shard_rows_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_ENGINE_H_

