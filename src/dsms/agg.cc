#include "dsms/agg.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "util/check.h"

namespace fwdecay::dsms {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// --- Built-in SQL aggregates -----------------------------------------------

class CountAgg : public AggState {
 public:
  void Update(std::span<const Value>) override { ++count_; }
  void UpdateBatch(std::span<const ValueColumn>,
                   std::span<const std::uint32_t> rows) override {
    count_ += static_cast<std::int64_t>(rows.size());
  }
  void Merge(AggState& other) override {
    count_ += static_cast<CountAgg&>(other).count_;
  }
  Value Finalize() const override { return Value(count_); }
  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteI64(count_);
    return true;
  }
  bool RestoreFrom(ByteReader* reader) override {
    return reader->ReadI64(&count_) && count_ >= 0;
  }

 private:
  std::int64_t count_ = 0;
};

class SumAgg : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "sum() needs an argument");
    if (!args[0].is_int()) all_int_ = false;
    sum_ += args[0].AsDouble();
  }
  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(!args_columns.empty(), "sum() needs an argument");
    const ValueColumn& col = args_columns[0];
    // Row order preserved: FP addition order matches the per-tuple path.
    // Typed columns skip the per-row type test — a kI64 column is int in
    // every row (all_int_ unchanged), a kF64 column in none.
    switch (col.rep()) {
      case ValueColumn::Rep::kI64: {
        const std::int64_t* v = col.i64_data();
        for (std::uint32_t row : rows) sum_ += static_cast<double>(v[row]);
        return;
      }
      case ValueColumn::Rep::kF64: {
        if (!rows.empty()) all_int_ = false;
        const double* v = col.f64_data();
        for (std::uint32_t row : rows) sum_ += v[row];
        return;
      }
      case ValueColumn::Rep::kBoxed:
        break;
    }
    for (std::uint32_t row : rows) {
      if (!col[row].is_int()) all_int_ = false;
      sum_ += col[row].AsDouble();
    }
  }
  void Merge(AggState& other) override {
    auto& o = static_cast<SumAgg&>(other);
    sum_ += o.sum_;
    all_int_ = all_int_ && o.all_int_;
  }
  Value Finalize() const override {
    if (all_int_) return Value(static_cast<std::int64_t>(sum_));
    return Value(sum_);
  }
  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(sum_);
    writer->WriteU8(all_int_ ? 1 : 0);
    return true;
  }
  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadDouble(&sum_) || !reader->ReadU8(&flag) || flag > 1) {
      return false;
    }
    all_int_ = flag != 0;
    return true;
  }

 private:
  double sum_ = 0.0;
  bool all_int_ = true;
};

class AvgAgg : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "avg() needs an argument");
    sum_ += args[0].AsDouble();
    ++count_;
  }
  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(!args_columns.empty(), "avg() needs an argument");
    const ValueColumn& col = args_columns[0];
    switch (col.rep()) {
      case ValueColumn::Rep::kI64: {
        const std::int64_t* v = col.i64_data();
        for (std::uint32_t row : rows) sum_ += static_cast<double>(v[row]);
        break;
      }
      case ValueColumn::Rep::kF64: {
        const double* v = col.f64_data();
        for (std::uint32_t row : rows) sum_ += v[row];
        break;
      }
      case ValueColumn::Rep::kBoxed:
        for (std::uint32_t row : rows) sum_ += col[row].AsDouble();
        break;
    }
    count_ += static_cast<std::int64_t>(rows.size());
  }
  void Merge(AggState& other) override {
    auto& o = static_cast<AvgAgg&>(other);
    sum_ += o.sum_;
    count_ += o.count_;
  }
  Value Finalize() const override {
    return Value(count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_));
  }
  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(sum_);
    writer->WriteI64(count_);
    return true;
  }
  bool RestoreFrom(ByteReader* reader) override {
    return reader->ReadDouble(&sum_) && reader->ReadI64(&count_) &&
           count_ >= 0;
  }

 private:
  double sum_ = 0.0;
  std::int64_t count_ = 0;
};

/// count(distinct expr): exact distinct count over the argument's value
/// hashes (Section IV-D's undecayed special case; the decayed variant is
/// the FDDISTINCT UDAF).
class CountDistinctAgg : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "count(distinct) needs an argument");
    seen_.insert(args[0].Hash());
  }
  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(!args_columns.empty(),
                      "count(distinct) needs an argument");
    const ValueColumn& col = args_columns[0];
    for (std::uint32_t row : rows) seen_.insert(col[row].Hash());
  }
  void Merge(AggState& other) override {
    auto& o = static_cast<CountDistinctAgg&>(other);
    seen_.insert(o.seen_.begin(), o.seen_.end());
  }
  Value Finalize() const override {
    return Value(static_cast<std::int64_t>(seen_.size()));
  }
  bool SerializeTo(ByteWriter* writer) const override {
    // Sorted so snapshots of equal states are byte-identical.
    std::vector<std::uint64_t> hashes(seen_.begin(), seen_.end());
    std::sort(hashes.begin(), hashes.end());
    writer->WriteU64(hashes.size());
    for (std::uint64_t h : hashes) writer->WriteU64(h);
    return true;
  }
  bool RestoreFrom(ByteReader* reader) override {
    std::uint64_t n = 0;
    if (!reader->ReadU64(&n) || n > reader->Remaining() / 8) return false;
    seen_.clear();
    seen_.reserve(n);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t h = 0;
      if (!reader->ReadU64(&h)) return false;
      if (i > 0 && h <= prev) return false;  // must be strictly ascending
      prev = h;
      seen_.insert(h);
    }
    return true;
  }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

template <bool kIsMax>
class ExtremumAgg : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "min()/max() needs an argument");
    Offer(args[0]);
  }
  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(!args_columns.empty(), "min()/max() needs an argument");
    const ValueColumn& col = args_columns[0];
    for (std::uint32_t row : rows) Offer(col[row]);
  }
  void Merge(AggState& other) override {
    auto& o = static_cast<ExtremumAgg&>(other);
    if (o.has_value_) Offer(o.best_);
  }
  Value Finalize() const override { return has_value_ ? best_ : Value(); }
  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteU8(has_value_ ? 1 : 0);
    if (has_value_) best_.SerializeTo(writer);
    return true;
  }
  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    has_value_ = flag != 0;
    if (has_value_) {
      auto v = Value::Deserialize(reader);
      if (!v) return false;
      best_ = std::move(*v);
    }
    return true;
  }

 private:
  void Offer(const Value& v) {
    if (!has_value_ || (kIsMax ? Compare(v, best_) > 0
                               : Compare(v, best_) < 0)) {
      best_ = v;
    }
    has_value_ = true;
  }

  Value best_;
  bool has_value_ = false;
};

}  // namespace

void AggState::UpdateBatch(std::span<const ValueColumn> args_columns,
                           std::span<const std::uint32_t> rows) {
  // Gather each selected row into the member scratch and fall back to
  // the per-tuple Update — same call sequence, same state evolution,
  // no per-tuple allocation (the scratch buffer is reused).
  update_scratch_.resize(args_columns.size());
  for (std::uint32_t row : rows) {
    for (std::size_t a = 0; a < args_columns.size(); ++a) {
      update_scratch_[a] = args_columns[a][row];
    }
    Update(update_scratch_);
  }
}

bool AggState::SerializeTo(ByteWriter*) const {
  // Aggregates that predate checkpointing opt out by default; the engine
  // reports the plan as non-checkpointable instead of writing a partial
  // snapshot.
  return false;
}

bool AggState::RestoreFrom(ByteReader*) { return false; }

AggRegistry::AggRegistry() {
  Register("count", [] { return std::make_unique<CountAgg>(); });
  Register("count_distinct",
           [] { return std::make_unique<CountDistinctAgg>(); });
  Register("sum", [] { return std::make_unique<SumAgg>(); });
  Register("avg", [] { return std::make_unique<AvgAgg>(); });
  Register("min", [] { return std::make_unique<ExtremumAgg<false>>(); });
  Register("max", [] { return std::make_unique<ExtremumAgg<true>>(); });
}

AggRegistry& AggRegistry::Instance() {
  // Leaked singleton: trivially-destructible static storage per the
  // style rules on global objects.
  static AggRegistry& registry = *new AggRegistry();
  return registry;
}

void AggRegistry::Register(const std::string& name, AggFactory factory) {
  const std::string key = Lower(name);
  for (auto& [existing, f] : entries_) {
    if (existing == key) {
      f = std::move(factory);
      return;
    }
  }
  entries_.emplace_back(key, std::move(factory));
}

bool AggRegistry::Contains(const std::string& name) const {
  const std::string key = Lower(name);
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == key; });
}

std::unique_ptr<AggState> AggRegistry::Create(const std::string& name) const {
  const std::string key = Lower(name);
  for (const auto& [existing, factory] : entries_) {
    if (existing == key) return factory();
  }
  FWDECAY_CHECK_MSG(false, "unknown aggregate function");
  return nullptr;
}

std::vector<std::string> AggRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) names.push_back(name);
  return names;
}

}  // namespace fwdecay::dsms
