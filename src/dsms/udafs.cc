#include "dsms/udafs.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsms/agg.h"
#include "sampling/biased_reservoir.h"
#include "sampling/reservoir.h"
#include "sketch/backward_sum.h"
#include "sketch/dominance_norm.h"
#include "sketch/qdigest.h"
#include "sketch/sliding_hh.h"
#include "sketch/space_saving.h"
#include "util/check.h"
#include "util/random.h"
#include "util/thread_annotations.h"  // locking lint: file uses std::atomic
#include "util/top_k_heap.h"

namespace fwdecay::dsms {

namespace {

// Each sampler state draws from its own deterministic generator; states
// are numbered in creation order so repeated runs reproduce exactly.
std::uint64_t NextStateSeed() {
  static std::atomic<std::uint64_t> counter{0};
  // fwdecay: relaxed-ok(id allocation; uniqueness needs only RMW atomicity, not ordering)
  return 0x9d5f7ab1u + counter.fetch_add(1, std::memory_order_relaxed);
}

// Renders a sample of numeric items as "v1,v2,..." sorted ascending.
std::string RenderSample(std::vector<double> items) {
  std::sort(items.begin(), items.end());
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", items[i]);
    out += buf;
  }
  return out;
}

std::size_t OptSize(std::span<const Value> args, std::size_t index,
                    std::size_t fallback) {
  if (args.size() <= index) return fallback;
  const std::int64_t v = args[index].AsInt();
  FWDECAY_CHECK_MSG(v > 0, "UDAF size parameter must be positive");
  return static_cast<std::size_t>(v);
}

double OptDouble(std::span<const Value> args, std::size_t index,
                 double fallback) {
  return args.size() <= index ? fallback : args[index].AsDouble();
}

// Column-indexed variants for UpdateBatch overrides: read one row's
// optional parameter straight out of the argument columns, so batched
// lazy initialization never gathers a per-row argument vector.
std::size_t OptColSize(std::span<const ValueColumn> args_columns,
                       std::size_t index, std::uint32_t row,
                       std::size_t fallback) {
  if (args_columns.size() <= index) return fallback;
  const std::int64_t v = args_columns[index][row].AsInt();
  FWDECAY_CHECK_MSG(v > 0, "UDAF size parameter must be positive");
  return static_cast<std::size_t>(v);
}

double OptColDouble(std::span<const ValueColumn> args_columns,
                    std::size_t index, std::uint32_t row, double fallback) {
  return args_columns.size() <= index ? fallback
                                      : args_columns[index][row].AsDouble();
}

// --- Checkpoint helpers -----------------------------------------------------
//
// Sampler UDAFs serialize their full generator state: a restored sampler
// must continue the exact random sequence of the checkpointed run, or
// recovery-replay would diverge from the uninterrupted baseline.

void WriteRngState(ByteWriter* writer, const Rng& rng) {
  std::uint64_t s[4];
  rng.SaveState(s);
  for (std::uint64_t word : s) writer->WriteU64(word);
}

bool ReadRngState(ByteReader* reader, Rng* rng) {
  std::uint64_t s[4];
  for (auto& word : s) {
    if (!reader->ReadU64(&word)) return false;
  }
  rng->LoadState(s);
  return true;
}

void WriteHeap(ByteWriter* writer, const TopKHeap<double>& heap) {
  writer->WriteU64(heap.capacity());
  writer->WriteU32(static_cast<std::uint32_t>(heap.size()));
  // Verbatim array order: eviction under tied scores depends on it.
  for (const auto& e : heap.entries()) {
    writer->WriteDouble(e.score);
    writer->WriteDouble(e.value);
  }
}

std::unique_ptr<TopKHeap<double>> ReadHeap(ByteReader* reader) {
  std::uint64_t capacity = 0;
  std::uint32_t n = 0;
  if (!reader->ReadU64(&capacity) || capacity == 0 ||
      capacity > (std::uint64_t{1} << 26)) {
    return nullptr;
  }
  if (!reader->ReadU32(&n) || n > capacity || n > reader->Remaining() / 16) {
    return nullptr;
  }
  std::vector<TopKHeap<double>::Entry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TopKHeap<double>::Entry e{0.0, 0.0};
    if (!reader->ReadDouble(&e.score) || !reader->ReadDouble(&e.value)) {
      return nullptr;
    }
    entries.push_back(e);
  }
  auto heap =
      std::make_unique<TopKHeap<double>>(static_cast<std::size_t>(capacity));
  if (!heap->RestoreEntries(std::move(entries))) return nullptr;
  return heap;
}

// --- Samplers ---------------------------------------------------------------

/// PRISAMP(item, weight [, k]): priority sampling. Priorities w/u are
/// kept in the linear domain — weights such as exp(time % 60) stay well
/// within double range inside a one-minute group.
class PrisampUdaf : public AggState {
 public:
  PrisampUdaf() : rng_(NextStateSeed()) {}

  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "PRISAMP(item, weight [, k])");
    EnsureHeap(OptSize(args, 2, kDefaultK) + 1);  // +1: threshold slot
    const double w = args[1].AsDouble();
    if (w <= 0.0) return;
    heap_->Offer(w / rng_.NextDoubleOpenZero(), args[0].AsDouble());
  }

  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(args_columns.size() >= 2, "PRISAMP(item, weight [, k])");
    if (rows.empty()) return;
    if (heap_ == nullptr) {
      EnsureHeap(OptColSize(args_columns, 2, rows.front(), kDefaultK) + 1);
    }
    const ValueColumn& items = args_columns[0];
    const ValueColumn& weights = args_columns[1];
    for (std::uint32_t row : rows) {
      const double w = weights[row].AsDouble();
      if (w <= 0.0) continue;  // no RNG draw — matches the per-tuple path
      heap_->Offer(w / rng_.NextDoubleOpenZero(), items[row].AsDouble());
    }
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<PrisampUdaf&>(other);
    if (o.heap_ == nullptr) return;
    EnsureHeap(o.heap_->capacity());
    for (const auto& e : o.heap_->entries()) heap_->Offer(e.score, e.value);
  }

  Value Finalize() const override {
    if (heap_ == nullptr) return Value(std::string());
    auto sorted = heap_->SortedByScoreDesc();
    std::vector<double> items;
    const std::size_t take = sorted.size() == heap_->capacity()
                                 ? sorted.size() - 1
                                 : sorted.size();
    for (std::size_t i = 0; i < take; ++i) items.push_back(sorted[i].value);
    return Value(RenderSample(std::move(items)));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    WriteRngState(writer, rng_);
    writer->WriteU8(heap_ != nullptr ? 1 : 0);
    if (heap_ != nullptr) WriteHeap(writer, *heap_);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    if (!ReadRngState(reader, &rng_)) return false;
    std::uint8_t flag = 0;
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    heap_.reset();
    if (flag != 0) {
      heap_ = ReadHeap(reader);
      if (heap_ == nullptr) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kDefaultK = 64;

  void EnsureHeap(std::size_t k_plus_1) {
    if (heap_ == nullptr) heap_ = std::make_unique<TopKHeap<double>>(k_plus_1);
  }

  Rng rng_;
  std::unique_ptr<TopKHeap<double>> heap_;
};

/// WRSAMP(item, weight [, k]): A-Res weighted reservoir, log-domain keys.
class WrsampUdaf : public AggState {
 public:
  WrsampUdaf() : rng_(NextStateSeed()) {}

  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "WRSAMP(item, weight [, k])");
    EnsureHeap(OptSize(args, 2, kDefaultK));
    const double w = args[1].AsDouble();
    if (w <= 0.0) return;
    const double score =
        std::log(w) - std::log(-std::log(rng_.NextDoubleOpenZero()));
    heap_->Offer(score, args[0].AsDouble());
  }

  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(args_columns.size() >= 2, "WRSAMP(item, weight [, k])");
    if (rows.empty()) return;
    if (heap_ == nullptr) {
      EnsureHeap(OptColSize(args_columns, 2, rows.front(), kDefaultK));
    }
    const ValueColumn& items = args_columns[0];
    const ValueColumn& weights = args_columns[1];
    for (std::uint32_t row : rows) {
      const double w = weights[row].AsDouble();
      if (w <= 0.0) continue;  // no RNG draw — matches the per-tuple path
      const double score =
          std::log(w) - std::log(-std::log(rng_.NextDoubleOpenZero()));
      heap_->Offer(score, items[row].AsDouble());
    }
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<WrsampUdaf&>(other);
    if (o.heap_ == nullptr) return;
    EnsureHeap(o.heap_->capacity());
    for (const auto& e : o.heap_->entries()) heap_->Offer(e.score, e.value);
  }

  Value Finalize() const override {
    if (heap_ == nullptr) return Value(std::string());
    std::vector<double> items;
    for (const auto& e : heap_->entries()) items.push_back(e.value);
    return Value(RenderSample(std::move(items)));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    WriteRngState(writer, rng_);
    writer->WriteU8(heap_ != nullptr ? 1 : 0);
    if (heap_ != nullptr) WriteHeap(writer, *heap_);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    if (!ReadRngState(reader, &rng_)) return false;
    std::uint8_t flag = 0;
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    heap_.reset();
    if (flag != 0) {
      heap_ = ReadHeap(reader);
      if (heap_ == nullptr) return false;
    }
    return true;
  }

 private:
  static constexpr std::size_t kDefaultK = 64;

  void EnsureHeap(std::size_t k) {
    if (heap_ == nullptr) heap_ = std::make_unique<TopKHeap<double>>(k);
  }

  Rng rng_;
  std::unique_ptr<TopKHeap<double>> heap_;
};

/// RESSAMP(item [, k]): Vitter's undecayed reservoir (baseline).
class RessampUdaf : public AggState {
 public:
  RessampUdaf() : rng_(NextStateSeed()) {}

  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "RESSAMP(item [, k])");
    if (sampler_ == nullptr) {
      sampler_ = std::make_unique<ReservoirSampler<double>>(
          OptSize(args, 1, kDefaultK));
    }
    sampler_->Add(args[0].AsDouble(), rng_);
  }

  void Merge(AggState& other) override {
    // Approximate merge: re-offer the peer's sample. Fine for the
    // two-level engine split (partial groups are disjoint stream
    // segments) though not an exact reservoir union.
    auto& o = static_cast<RessampUdaf&>(other);
    if (o.sampler_ == nullptr) return;
    if (sampler_ == nullptr) {
      sampler_ = std::make_unique<ReservoirSampler<double>>(
          o.sampler_->capacity());
    }
    for (double v : o.sampler_->sample()) sampler_->Add(v, rng_);
  }

  Value Finalize() const override {
    if (sampler_ == nullptr) return Value(std::string());
    return Value(RenderSample(sampler_->sample()));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    WriteRngState(writer, rng_);
    writer->WriteU8(sampler_ != nullptr ? 1 : 0);
    if (sampler_ != nullptr) {
      writer->WriteU64(sampler_->capacity());
      writer->WriteU64(sampler_->seen());
      writer->WriteU32(static_cast<std::uint32_t>(sampler_->sample().size()));
      for (double v : sampler_->sample()) writer->WriteDouble(v);
    }
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    if (!ReadRngState(reader, &rng_)) return false;
    std::uint8_t flag = 0;
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    sampler_.reset();
    if (flag == 0) return true;
    std::uint64_t capacity = 0;
    std::uint64_t seen = 0;
    std::uint32_t n = 0;
    if (!reader->ReadU64(&capacity) || capacity == 0 ||
        capacity > (std::uint64_t{1} << 26)) {
      return false;
    }
    if (!reader->ReadU64(&seen) || !reader->ReadU32(&n) || n > capacity ||
        n > reader->Remaining() / 8) {
      return false;
    }
    std::vector<double> sample;
    sample.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      double v = 0.0;
      if (!reader->ReadDouble(&v)) return false;
      sample.push_back(v);
    }
    sampler_ = std::make_unique<ReservoirSampler<double>>(
        static_cast<std::size_t>(capacity));
    return sampler_->RestoreState(seen, std::move(sample));
  }

 private:
  static constexpr std::size_t kDefaultK = 64;

  Rng rng_;
  std::unique_ptr<ReservoirSampler<double>> sampler_;
};

/// AGGSAMP(item [, k]): Aggarwal's biased reservoir (baseline).
class AggsampUdaf : public AggState {
 public:
  AggsampUdaf() : rng_(NextStateSeed()) {}

  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "AGGSAMP(item [, k])");
    if (sampler_ == nullptr) {
      sampler_ = std::make_unique<BiasedReservoirSampler<double>>(
          OptSize(args, 1, kDefaultK));
    }
    sampler_->Add(args[0].AsDouble(), rng_);
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<AggsampUdaf&>(other);
    if (o.sampler_ == nullptr) return;
    if (sampler_ == nullptr) {
      sampler_ = std::make_unique<BiasedReservoirSampler<double>>(
          o.sampler_->capacity());
    }
    for (double v : o.sampler_->sample()) sampler_->Add(v, rng_);
  }

  Value Finalize() const override {
    if (sampler_ == nullptr) return Value(std::string());
    return Value(RenderSample(sampler_->sample()));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    WriteRngState(writer, rng_);
    writer->WriteU8(sampler_ != nullptr ? 1 : 0);
    if (sampler_ != nullptr) {
      writer->WriteU64(sampler_->capacity());
      writer->WriteU64(sampler_->seen());
      writer->WriteU32(static_cast<std::uint32_t>(sampler_->sample().size()));
      for (double v : sampler_->sample()) writer->WriteDouble(v);
    }
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    if (!ReadRngState(reader, &rng_)) return false;
    std::uint8_t flag = 0;
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    sampler_.reset();
    if (flag == 0) return true;
    std::uint64_t capacity = 0;
    std::uint64_t seen = 0;
    std::uint32_t n = 0;
    if (!reader->ReadU64(&capacity) || capacity == 0 ||
        capacity > (std::uint64_t{1} << 26)) {
      return false;
    }
    if (!reader->ReadU64(&seen) || !reader->ReadU32(&n) || n > capacity ||
        n > reader->Remaining() / 8) {
      return false;
    }
    std::vector<double> sample;
    sample.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      double v = 0.0;
      if (!reader->ReadDouble(&v)) return false;
      sample.push_back(v);
    }
    sampler_ = std::make_unique<BiasedReservoirSampler<double>>(
        static_cast<std::size_t>(capacity));
    return sampler_->RestoreState(seen, std::move(sample));
  }

 private:
  static constexpr std::size_t kDefaultK = 64;

  Rng rng_;
  std::unique_ptr<BiasedReservoirSampler<double>> sampler_;
};

// --- Heavy hitters ----------------------------------------------------------

std::string RenderHitters(const std::vector<HeavyHitter>& hitters) {
  std::string out;
  for (std::size_t i = 0; i < hitters.size(); ++i) {
    if (i > 0) out += " ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu:%.1f",
                  static_cast<unsigned long long>(hitters[i].key),
                  hitters[i].estimate);
    out += buf;
  }
  return out;
}

/// FDHH(key, weight [, phi [, eps]]): forward-decayed heavy hitters via
/// weighted SpaceSaving (Theorem 2). The weight argument is the static
/// weight g(t_i - L) generated by the query.
class FdhhUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "FDHH(key, weight [, phi [, eps]])");
    if (sketch_ == nullptr) {
      phi_ = OptDouble(args, 2, 0.05);
      const double eps = OptDouble(args, 3, 0.01);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      sketch_ = std::make_unique<WeightedSpaceSaving>(
          static_cast<std::size_t>(std::ceil(1.0 / eps)));
    }
    const double w = args[1].AsDouble();
    if (w <= 0.0) return;
    sketch_->Update(static_cast<std::uint64_t>(args[0].AsInt()), w);
  }

  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(args_columns.size() >= 2,
                      "FDHH(key, weight [, phi [, eps]])");
    if (rows.empty()) return;
    if (sketch_ == nullptr) {
      phi_ = OptColDouble(args_columns, 2, rows.front(), 0.05);
      const double eps = OptColDouble(args_columns, 3, rows.front(), 0.01);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      sketch_ = std::make_unique<WeightedSpaceSaving>(
          static_cast<std::size_t>(std::ceil(1.0 / eps)));
    }
    const ValueColumn& keys = args_columns[0];
    const ValueColumn& weights = args_columns[1];
    for (std::uint32_t row : rows) {
      const double w = weights[row].AsDouble();
      if (w <= 0.0) continue;
      sketch_->Update(static_cast<std::uint64_t>(keys[row].AsInt()), w);
    }
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<FdhhUdaf&>(other);
    if (o.sketch_ == nullptr) return;
    if (sketch_ == nullptr) {
      phi_ = o.phi_;
      sketch_ = std::make_unique<WeightedSpaceSaving>(o.sketch_->capacity());
    }
    sketch_->Merge(*o.sketch_);
  }

  Value Finalize() const override {
    if (sketch_ == nullptr) return Value(std::string());
    return Value(RenderHitters(sketch_->Query(phi_)));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(phi_);
    writer->WriteU8(sketch_ != nullptr ? 1 : 0);
    if (sketch_ != nullptr) sketch_->SerializeTo(writer);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadDouble(&phi_) || !std::isfinite(phi_) || phi_ < 0.0) {
      return false;
    }
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    sketch_.reset();
    if (flag != 0) {
      auto sketch = WeightedSpaceSaving::Deserialize(reader);
      if (!sketch) return false;
      sketch_ = std::make_unique<WeightedSpaceSaving>(std::move(*sketch));
    }
    return true;
  }

 private:
  double phi_ = 0.05;
  std::unique_ptr<WeightedSpaceSaving> sketch_;
};

/// UNARYHH(key [, phi [, eps]]): undecayed heavy hitters via the
/// unary-optimized SpaceSaving (the paper's "Unary HH").
class UnaryhhUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(!args.empty(), "UNARYHH(key [, phi [, eps]])");
    if (sketch_ == nullptr) {
      phi_ = OptDouble(args, 1, 0.05);
      const double eps = OptDouble(args, 2, 0.01);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      sketch_ = std::make_unique<UnarySpaceSaving>(
          static_cast<std::size_t>(std::ceil(1.0 / eps)));
    }
    sketch_->Update(static_cast<std::uint64_t>(args[0].AsInt()));
  }

  void Merge(AggState&) override {
    FWDECAY_CHECK_MSG(false,
                      "UNARYHH does not support the two-level split; run it "
                      "one-level (as the paper does for holistic UDAFs)");
  }

  Value Finalize() const override {
    if (sketch_ == nullptr) return Value(std::string());
    return Value(RenderHitters(sketch_->Query(phi_)));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(phi_);
    writer->WriteU8(sketch_ != nullptr ? 1 : 0);
    if (sketch_ != nullptr) sketch_->SerializeTo(writer);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadDouble(&phi_) || !std::isfinite(phi_) || phi_ < 0.0) {
      return false;
    }
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    sketch_.reset();
    if (flag != 0) {
      auto sketch = UnarySpaceSaving::Deserialize(reader);
      if (!sketch) return false;
      sketch_ = std::make_unique<UnarySpaceSaving>(std::move(*sketch));
    }
    return true;
  }

 private:
  double phi_ = 0.05;
  std::unique_ptr<UnarySpaceSaving> sketch_;
};

/// SWHH(time, key [, phi [, eps]]): the sliding-window/backward-decay HH
/// baseline; finalizes to the HH set over the whole group span.
class SwhhUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "SWHH(time, key [, phi [, eps]])");
    if (sketch_ == nullptr) {
      phi_ = OptDouble(args, 2, 0.05);
      const double eps = OptDouble(args, 3, 0.01);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      sketch_ = std::make_unique<SlidingWindowHeavyHitters>(eps);
    }
    const double ts = args[0].AsDouble();
    last_ts_ = std::max(last_ts_, ts);
    if (first_ts_ < 0.0) first_ts_ = ts;
    sketch_->Update(ts, static_cast<std::uint64_t>(args[1].AsInt()));
  }

  void Merge(AggState&) override {
    FWDECAY_CHECK_MSG(false, "SWHH does not support the two-level split");
  }

  Value Finalize() const override {
    if (sketch_ == nullptr) return Value(std::string());
    const double window = std::max(last_ts_ - first_ts_, 1e-9) * 2.0;
    return Value(RenderHitters(sketch_->QueryWindow(last_ts_, window, phi_)));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(phi_);
    writer->WriteDouble(first_ts_);
    writer->WriteDouble(last_ts_);
    writer->WriteU8(sketch_ != nullptr ? 1 : 0);
    if (sketch_ != nullptr) sketch_->SerializeTo(writer);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadDouble(&phi_) || !std::isfinite(phi_) || phi_ < 0.0) {
      return false;
    }
    if (!reader->ReadDouble(&first_ts_) || !reader->ReadDouble(&last_ts_) ||
        !reader->ReadU8(&flag) || flag > 1) {
      return false;
    }
    sketch_.reset();
    if (flag != 0) {
      auto sketch = SlidingWindowHeavyHitters::Deserialize(reader);
      if (!sketch) return false;
      sketch_ =
          std::make_unique<SlidingWindowHeavyHitters>(std::move(*sketch));
    }
    return true;
  }

 private:
  double phi_ = 0.05;
  double first_ts_ = -1.0;
  double last_ts_ = 0.0;
  std::unique_ptr<SlidingWindowHeavyHitters> sketch_;
};

// --- Backward-decayed sum baseline ------------------------------------------

/// EHDSUM(time, value [, eps]): maintains the exponential-histogram pair
/// and finalizes to the backward *polynomial* decayed sum f(a)=(a+1)^-2
/// evaluated at the group's last timestamp — the Figure 2 baseline.
class EhdsumUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "EHDSUM(time, value [, eps])");
    if (agg_ == nullptr) {
      const double eps = OptDouble(args, 2, 0.1);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      agg_ = std::make_unique<BackwardDecayedAggregator>(eps,
                                                         /*value_bits=*/16);
    }
    const double ts = args[0].AsDouble();
    last_ts_ = std::max(last_ts_, ts);
    agg_->Insert(ts, static_cast<std::uint64_t>(args[1].AsInt()));
  }

  void Merge(AggState&) override {
    FWDECAY_CHECK_MSG(false, "EHDSUM does not support the two-level split");
  }

  Value Finalize() const override {
    if (agg_ == nullptr) return Value(0.0);
    return Value(agg_->DecayedSum(
        last_ts_, [](double age) { return std::pow(age + 1.0, -2.0); }));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(last_ts_);
    writer->WriteU8(agg_ != nullptr ? 1 : 0);
    if (agg_ != nullptr) agg_->SerializeTo(writer);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadDouble(&last_ts_) || !reader->ReadU8(&flag) ||
        flag > 1) {
      return false;
    }
    agg_.reset();
    if (flag != 0) {
      auto agg = BackwardDecayedAggregator::Deserialize(reader);
      if (!agg) return false;
      agg_ = std::make_unique<BackwardDecayedAggregator>(std::move(*agg));
    }
    return true;
  }

 private:
  double last_ts_ = 0.0;
  std::unique_ptr<BackwardDecayedAggregator> agg_;
};

// --- Decayed min / max (Definition 6) ---------------------------------------

/// FDMIN/FDMAX(value, weight): tracks the extremum of weight * value —
/// the static product g(t_i - L) * v_i of Definition 6; divide by
/// g(t - L) downstream to obtain the decayed extremum at query time t.
template <bool kIsMax>
class FdExtremumUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "FDMIN/FDMAX(value, weight)");
    const double w = args[1].AsDouble();
    if (w <= 0.0) return;
    Offer(w * args[0].AsDouble());
  }

  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(args_columns.size() >= 2, "FDMIN/FDMAX(value, weight)");
    const ValueColumn& values = args_columns[0];
    const ValueColumn& weights = args_columns[1];
    for (std::uint32_t row : rows) {
      const double w = weights[row].AsDouble();
      if (w <= 0.0) continue;
      Offer(w * values[row].AsDouble());
    }
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<FdExtremumUdaf&>(other);
    if (o.has_value_) Offer(o.best_);
  }

  Value Finalize() const override { return Value(has_value_ ? best_ : 0.0); }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(best_);
    writer->WriteU8(has_value_ ? 1 : 0);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadDouble(&best_) || !reader->ReadU8(&flag) || flag > 1) {
      return false;
    }
    has_value_ = flag != 0;
    return true;
  }

 private:
  void Offer(double scaled) {
    if (!has_value_ || (kIsMax ? scaled > best_ : scaled < best_)) {
      best_ = scaled;
    }
    has_value_ = true;
  }

  double best_ = 0.0;
  bool has_value_ = false;
};

// --- Quantiles and distinct -------------------------------------------------

/// FDQUANTILE(value, weight, phi [, bits [, eps]]): weighted q-digest
/// quantile under forward decay (Theorem 3).
class FdquantileUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 3,
                      "FDQUANTILE(value, weight, phi [, bits [, eps]])");
    if (digest_ == nullptr) {
      phi_ = args[2].AsDouble();
      const int bits = static_cast<int>(OptSize(args, 3, 16));
      const double eps = OptDouble(args, 4, 0.01);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      digest_ = std::make_unique<QDigest>(bits, eps);
    }
    const double w = args[1].AsDouble();
    if (w <= 0.0) return;
    digest_->Update(static_cast<std::uint64_t>(args[0].AsInt()), w);
  }

  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(args_columns.size() >= 3,
                      "FDQUANTILE(value, weight, phi [, bits [, eps]])");
    if (rows.empty()) return;
    if (digest_ == nullptr) {
      phi_ = args_columns[2][rows.front()].AsDouble();
      const int bits =
          static_cast<int>(OptColSize(args_columns, 3, rows.front(), 16));
      const double eps = OptColDouble(args_columns, 4, rows.front(), 0.01);
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      digest_ = std::make_unique<QDigest>(bits, eps);
    }
    const ValueColumn& values = args_columns[0];
    const ValueColumn& weights = args_columns[1];
    for (std::uint32_t row : rows) {
      const double w = weights[row].AsDouble();
      if (w <= 0.0) continue;
      digest_->Update(static_cast<std::uint64_t>(values[row].AsInt()), w);
    }
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<FdquantileUdaf&>(other);
    if (o.digest_ == nullptr) return;
    if (digest_ == nullptr) {
      phi_ = o.phi_;
      digest_ = std::make_unique<QDigest>(o.digest_->universe_bits(),
                                          o.digest_->eps());
    }
    digest_->Merge(*o.digest_);
  }

  Value Finalize() const override {
    if (digest_ == nullptr) return Value(std::int64_t{0});
    return Value(static_cast<std::int64_t>(digest_->Quantile(phi_)));
  }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteDouble(phi_);
    writer->WriteU8(digest_ != nullptr ? 1 : 0);
    if (digest_ != nullptr) digest_->SerializeTo(writer);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    // QDigest::Quantile CHECKs phi in [0, 1]; enforce it here so a
    // hostile snapshot fails restore instead of crashing Finalize.
    if (!reader->ReadDouble(&phi_) || !(phi_ >= 0.0 && phi_ <= 1.0)) {
      return false;
    }
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    digest_.reset();
    if (flag != 0) {
      auto digest = QDigest::Deserialize(reader);
      if (!digest) return false;
      digest_ = std::make_unique<QDigest>(std::move(*digest));
    }
    return true;
  }

 private:
  double phi_ = 0.5;
  std::unique_ptr<QDigest> digest_;
};

/// FDDISTINCT(key, weight [, k]): decayed count-distinct via the
/// dominance-norm sketch (Theorem 4). Finalizes to the un-normalized
/// dominance norm; divide by g(t - L) downstream if needed.
class FddistinctUdaf : public AggState {
 public:
  void Update(std::span<const Value> args) override {
    FWDECAY_CHECK_MSG(args.size() >= 2, "FDDISTINCT(key, weight [, k])");
    if (sketch_ == nullptr) {
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      sketch_ = std::make_unique<DominanceNormSketch>(OptSize(args, 2, 1024));
    }
    const double w = args[1].AsDouble();
    if (w <= 0.0) return;
    sketch_->Update(static_cast<std::uint64_t>(args[0].AsInt()), w);
  }

  void UpdateBatch(std::span<const ValueColumn> args_columns,
                   std::span<const std::uint32_t> rows) override {
    FWDECAY_CHECK_MSG(args_columns.size() >= 2, "FDDISTINCT(key, weight [, k])");
    if (rows.empty()) return;
    if (sketch_ == nullptr) {
      // fwdecay: hotpath-cold(one-time lazy sketch init on the group's first update)
      sketch_ = std::make_unique<DominanceNormSketch>(
          OptColSize(args_columns, 2, rows.front(), 1024));
    }
    const ValueColumn& keys = args_columns[0];
    const ValueColumn& weights = args_columns[1];
    for (std::uint32_t row : rows) {
      const double w = weights[row].AsDouble();
      if (w <= 0.0) continue;
      sketch_->Update(static_cast<std::uint64_t>(keys[row].AsInt()), w);
    }
  }

  void Merge(AggState& other) override {
    auto& o = static_cast<FddistinctUdaf&>(other);
    if (o.sketch_ == nullptr) return;
    if (sketch_ == nullptr) {
      sketch_ = std::make_unique<DominanceNormSketch>(1024);
    }
    sketch_->Merge(*o.sketch_);
  }

  Value Finalize() const override {
    if (sketch_ == nullptr) return Value(0.0);
    return Value(sketch_->Estimate());
  }

  bool SerializeTo(ByteWriter* writer) const override {
    writer->WriteU8(sketch_ != nullptr ? 1 : 0);
    if (sketch_ != nullptr) sketch_->SerializeTo(writer);
    return true;
  }

  bool RestoreFrom(ByteReader* reader) override {
    std::uint8_t flag = 0;
    if (!reader->ReadU8(&flag) || flag > 1) return false;
    sketch_.reset();
    if (flag != 0) {
      auto sketch = DominanceNormSketch::Deserialize(reader);
      if (!sketch) return false;
      sketch_ = std::make_unique<DominanceNormSketch>(std::move(*sketch));
    }
    return true;
  }

 private:
  std::unique_ptr<DominanceNormSketch> sketch_;
};

}  // namespace

void RegisterPaperUdafs() {
  AggRegistry& r = AggRegistry::Instance();
  r.Register("prisamp", [] { return std::make_unique<PrisampUdaf>(); });
  r.Register("wrsamp", [] { return std::make_unique<WrsampUdaf>(); });
  r.Register("ressamp", [] { return std::make_unique<RessampUdaf>(); });
  r.Register("aggsamp", [] { return std::make_unique<AggsampUdaf>(); });
  r.Register("fdhh", [] { return std::make_unique<FdhhUdaf>(); });
  r.Register("unaryhh", [] { return std::make_unique<UnaryhhUdaf>(); });
  r.Register("swhh", [] { return std::make_unique<SwhhUdaf>(); });
  r.Register("ehdsum", [] { return std::make_unique<EhdsumUdaf>(); });
  r.Register("fdquantile", [] { return std::make_unique<FdquantileUdaf>(); });
  r.Register("fddistinct", [] { return std::make_unique<FddistinctUdaf>(); });
  r.Register("fdmin",
             [] { return std::make_unique<FdExtremumUdaf<false>>(); });
  r.Register("fdmax",
             [] { return std::make_unique<FdExtremumUdaf<true>>(); });
}

}  // namespace fwdecay::dsms
