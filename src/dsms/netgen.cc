#include "dsms/netgen.h"

#include <algorithm>

#include "util/check.h"
#include "util/hash.h"

namespace fwdecay::dsms {

PacketGenerator::PacketGenerator(const TraceConfig& config)
    : config_(config),
      rng_(config.seed),
      delay_rng_(config.seed ^ 0xdecade0decade0ULL),
      server_zipf_(config.num_servers, config.server_skew) {
  FWDECAY_CHECK(config.rate_pps > 0.0);
  FWDECAY_CHECK(config.num_servers >= 1);
  FWDECAY_CHECK(config.num_clients >= 1);
  FWDECAY_CHECK(config.ports_per_server >= 1);
  FWDECAY_CHECK_MSG(config.mean_flow_len >= 1.0,
                    "flows must average at least one packet");
  FWDECAY_CHECK(config.target_active_flows >= 1);
}

PacketGenerator::Flow PacketGenerator::MakeFlow() {
  Flow f;
  // Zipf-popular server; the server rank is scrambled into an IP so that
  // popular keys are not numerically adjacent.
  const std::uint64_t server = server_zipf_.Next(rng_);
  f.dest_ip = static_cast<std::uint32_t>(HashU64(server, /*seed=*/7));
  f.dest_port = static_cast<std::uint16_t>(
      80 + rng_.NextBounded(config_.ports_per_server));
  f.src_ip = static_cast<std::uint32_t>(
      HashU64(rng_.NextBounded(config_.num_clients), /*seed=*/13));
  f.src_port = static_cast<std::uint16_t>(1024 + rng_.NextBounded(60000));
  f.protocol =
      rng_.NextBernoulli(config_.tcp_fraction) ? kProtoTcp : kProtoUdp;
  return f;
}

Packet PacketGenerator::MakePacket() {
  // Advance the arrival clock.
  if (config_.poisson_arrivals) {
    clock_ += rng_.NextExponential(config_.rate_pps);
  } else {
    clock_ += 1.0 / config_.rate_pps;
  }

  Packet p;
  p.time = clock_;
  if (config_.flow_structured) {
    // Keep the pool near the target, emit from a random active flow, and
    // terminate it with probability 1/mean_flow_len (geometric lengths).
    while (flows_.size() < config_.target_active_flows) {
      flows_.push_back(MakeFlow());
    }
    const std::size_t idx = rng_.NextBounded(flows_.size());
    const Flow& f = flows_[idx];
    p.src_ip = f.src_ip;
    p.src_port = f.src_port;
    p.dest_ip = f.dest_ip;
    p.dest_port = f.dest_port;
    p.protocol = f.protocol;
    if (rng_.NextBernoulli(1.0 / config_.mean_flow_len)) {
      flows_[idx] = flows_.back();
      flows_.pop_back();
    }
  } else {
    const Flow f = MakeFlow();
    p.src_ip = f.src_ip;
    p.src_port = f.src_port;
    p.dest_ip = f.dest_ip;
    p.dest_port = f.dest_port;
    p.protocol = f.protocol;
  }
  // Bimodal packet sizes: mostly small ACK-ish packets and full MTUs,
  // with a uniform middle band — the shape of real packet-length
  // distributions.
  const double r = rng_.NextDouble();
  if (r < 0.45) {
    p.len = 40 + static_cast<std::uint32_t>(rng_.NextBounded(64));
  } else if (r < 0.75) {
    p.len = 1400 + static_cast<std::uint32_t>(rng_.NextBounded(100));
  } else {
    p.len = 104 + static_cast<std::uint32_t>(rng_.NextBounded(1296));
  }
  return p;
}

Packet PacketGenerator::Next() {
  if (config_.reorder_jitter <= 0.0) return MakePacket();

  // Out-of-order delivery: each generated packet is held for a random
  // delay; the earliest releasable packet is delivered. The loop keeps a
  // modest buffer so something is always releasable.
  while (delayed_.size() < 64) {
    Packet p = MakePacket();
    const double release =
        p.time + delay_rng_.NextDouble() * config_.reorder_jitter;
    delayed_.push_back(Delayed{release, p});
  }
  auto it = std::min_element(delayed_.begin(), delayed_.end(),
                             [](const Delayed& a, const Delayed& b) {
                               return a.release_at < b.release_at;
                             });
  Packet out = it->packet;
  delayed_.erase(it);
  return out;
}

std::vector<Packet> PacketGenerator::Generate(std::size_t n) {
  std::vector<Packet> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

std::size_t PacketGenerator::NextBatch(PacketBatch* batch,
                                       std::size_t max_packets) {
  std::size_t appended = 0;
  while (appended < max_packets && !batch->full()) {
    batch->Append(Next());
    ++appended;
  }
  return appended;
}

PacketBatch PacketGenerator::GenerateBatch(std::size_t n) {
  PacketBatch batch(n > 0 ? n : 1);
  NextBatch(&batch, n);
  return batch;
}

}  // namespace fwdecay::dsms
