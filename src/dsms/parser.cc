#include "dsms/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>

namespace fwdecay::dsms {

namespace {

enum class TokKind {
  kIdent, kNumber, kString,
  kLParen, kRParen, kComma, kStar,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;   // identifier / string payload
  double number = 0.0;
  bool number_is_int = false;
  std::int64_t int_value = 0;
  std::size_t pos = 0;  // byte offset, for diagnostics
};

/// Hand-rolled lexer for the GSQL subset.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  // Tokenizes everything up front; returns false + error on bad input.
  bool Run(std::string* error) {
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        Push(TokKind::kEnd, pos_);
        return true;
      }
      const std::size_t start = pos_;
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_')) {
          ++end;
        }
        Token t{TokKind::kIdent, text_.substr(pos_, end - pos_), 0, false, 0,
                start};
        tokens_.push_back(std::move(t));
        pos_ = end;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        if (!LexNumber(start, error)) return false;
        continue;
      }
      if (c == '\'') {
        const std::size_t close = text_.find('\'', pos_ + 1);
        if (close == std::string::npos) {
          *error = "unterminated string literal at offset " +
                   std::to_string(start);
          return false;
        }
        Token t{TokKind::kString, text_.substr(pos_ + 1, close - pos_ - 1), 0,
                false, 0, start};
        tokens_.push_back(std::move(t));
        pos_ = close + 1;
        continue;
      }
      switch (c) {
        case '(': Push(TokKind::kLParen, start); ++pos_; continue;
        case ')': Push(TokKind::kRParen, start); ++pos_; continue;
        case ',': Push(TokKind::kComma, start); ++pos_; continue;
        case '*': Push(TokKind::kStar, start); ++pos_; continue;
        case '+': Push(TokKind::kPlus, start); ++pos_; continue;
        case '-': Push(TokKind::kMinus, start); ++pos_; continue;
        case '/': Push(TokKind::kSlash, start); ++pos_; continue;
        case '%': Push(TokKind::kPercent, start); ++pos_; continue;
        case '=':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') ++pos_;
          Push(TokKind::kEq, start);
          continue;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            pos_ += 2;
            Push(TokKind::kNe, start);
            continue;
          }
          break;
        case '<':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            ++pos_;
            Push(TokKind::kLe, start);
          } else if (pos_ < text_.size() && text_[pos_] == '>') {
            ++pos_;
            Push(TokKind::kNe, start);
          } else {
            Push(TokKind::kLt, start);
          }
          continue;
        case '>':
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            ++pos_;
            Push(TokKind::kGe, start);
          } else {
            Push(TokKind::kGt, start);
          }
          continue;
        default:
          break;
      }
      *error = std::string("unexpected character '") + c + "' at offset " +
               std::to_string(start);
      return false;
    }
  }

  std::vector<Token> Take() { return std::move(tokens_); }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void Push(TokKind kind, std::size_t pos) {
    tokens_.push_back(Token{kind, "", 0, false, 0, pos});
  }

  bool LexNumber(std::size_t start, std::string* error) {
    std::size_t end = pos_;
    bool is_int = true;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E' ||
            ((text_[end] == '+' || text_[end] == '-') && end > pos_ &&
             (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
      if (!std::isdigit(static_cast<unsigned char>(text_[end]))) {
        is_int = false;
      }
      ++end;
    }
    const std::string num = text_.substr(pos_, end - pos_);
    Token t{TokKind::kNumber, num, 0, is_int, 0, start};
    char* parse_end = nullptr;
    if (is_int) {
      t.int_value = std::strtoll(num.c_str(), &parse_end, 10);
    } else {
      t.number = std::strtod(num.c_str(), &parse_end);
    }
    if (parse_end == nullptr || *parse_end != '\0') {
      *error = "bad numeric literal '" + num + "' at offset " +
               std::to_string(start);
      return false;
    }
    tokens_.push_back(std::move(t));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::vector<Token> tokens_;
};

std::string LowerCopy(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult ParseQueryText() {
    ParseResult result;
    Query q;
    if (!ExpectKeyword("select")) return Fail(&result);
    if (!ParseSelectList(&q.select)) return Fail(&result);
    if (!ExpectKeyword("from")) return Fail(&result);
    if (Peek().kind != TokKind::kIdent) {
      error_ = "expected stream name after FROM";
      return Fail(&result);
    }
    q.from = Next().text;
    if (PeekKeyword("where")) {
      Next();
      q.where = ParseExpr();
      if (q.where == nullptr) return Fail(&result);
    }
    if (PeekKeyword("group")) {
      Next();
      if (!ExpectKeyword("by")) return Fail(&result);
      if (!ParseSelectList(&q.group_by)) return Fail(&result);
    }
    if (PeekKeyword("having")) {
      Next();
      q.having = ParseExpr();
      if (q.having == nullptr) return Fail(&result);
    }
    if (PeekKeyword("order")) {
      Next();
      if (!ExpectKeyword("by")) return Fail(&result);
      while (true) {
        OrderItem item;
        item.expr = ParseExpr();
        if (item.expr == nullptr) return Fail(&result);
        if (PeekKeyword("desc")) {
          Next();
          item.descending = true;
        } else if (PeekKeyword("asc")) {
          Next();
        }
        q.order_by.push_back(std::move(item));
        if (Peek().kind != TokKind::kComma) break;
        Next();
      }
    }
    if (PeekKeyword("limit")) {
      Next();
      if (Peek().kind != TokKind::kNumber || !Peek().number_is_int ||
          Peek().int_value < 0) {
        error_ = "LIMIT expects a non-negative integer";
        return Fail(&result);
      }
      q.limit = Next().int_value;
    }
    if (Peek().kind != TokKind::kEnd) {
      error_ = "unexpected trailing input at offset " +
               std::to_string(Peek().pos);
      return Fail(&result);
    }
    result.query = std::move(q);
    return result;
  }

  ExprParseResult ParseExprOnlyText() {
    ExprParseResult result;
    result.expr = ParseExpr();
    if (result.expr == nullptr || Peek().kind != TokKind::kEnd) {
      if (error_.empty()) error_ = "unexpected trailing input";
      result.expr = nullptr;
      result.error = error_;
    }
    return result;
  }

 private:
  ParseResult Fail(ParseResult* result) {
    result->error = error_.empty() ? "parse error" : error_;
    result->query.reset();
    return std::move(*result);
  }

  const Token& Peek() const { return tokens_[index_]; }
  const Token& Next() { return tokens_[index_++]; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && LowerCopy(Peek().text) == kw;
  }

  bool ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      error_ = std::string("expected keyword '") + kw + "' at offset " +
               std::to_string(Peek().pos);
      return false;
    }
    Next();
    return true;
  }

  bool Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) {
      error_ = std::string("expected ") + what + " at offset " +
               std::to_string(Peek().pos);
      return false;
    }
    Next();
    return true;
  }

  bool ParseSelectList(std::vector<SelectItem>* items) {
    while (true) {
      SelectItem item;
      item.expr = ParseExpr();
      if (item.expr == nullptr) return false;
      if (PeekKeyword("as")) {
        Next();
        if (Peek().kind != TokKind::kIdent) {
          error_ = "expected alias after AS";
          return false;
        }
        item.alias = LowerCopy(Next().text);
      }
      items->push_back(std::move(item));
      if (Peek().kind != TokKind::kComma) return true;
      Next();
    }
  }

  // Recursion guard shared by ParseExpr and ParseUnary: nested parens,
  // call arguments, and unary-minus chains all recurse per level, so a
  // hostile query ("((((…1…))))" or "----…1") would otherwise overflow
  // the stack — found by parser_fuzz_test under ASan. ~6 frames per
  // level keeps 200 levels comfortably inside any sane stack while
  // allowing far deeper expressions than any real query uses.
  static constexpr int kMaxExprDepth = 200;

  class NestingScope {
   public:
    explicit NestingScope(int* depth) : depth_(depth) { ++*depth_; }
    ~NestingScope() { --*depth_; }
    NestingScope(const NestingScope&) = delete;
    NestingScope& operator=(const NestingScope&) = delete;

   private:
    int* depth_;
  };

  bool CheckDepth() {
    if (expr_depth_ < kMaxExprDepth) return true;
    error_ = "expression nesting exceeds depth limit (" +
             std::to_string(kMaxExprDepth) + ")";
    return false;
  }

  // expr := and-expr (OR and-expr)*
  std::unique_ptr<Expr> ParseExpr() {
    if (!CheckDepth()) return nullptr;
    NestingScope scope(&expr_depth_);
    auto lhs = ParseAnd();
    if (lhs == nullptr) return nullptr;
    while (PeekKeyword("or")) {
      Next();
      auto rhs = ParseAnd();
      if (rhs == nullptr) return nullptr;
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  std::unique_ptr<Expr> ParseAnd() {
    auto lhs = ParseComparison();
    if (lhs == nullptr) return nullptr;
    while (PeekKeyword("and")) {
      Next();
      auto rhs = ParseComparison();
      if (rhs == nullptr) return nullptr;
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  std::unique_ptr<Expr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (lhs == nullptr) return nullptr;
    BinOp op;
    switch (Peek().kind) {
      case TokKind::kEq: op = BinOp::kEq; break;
      case TokKind::kNe: op = BinOp::kNe; break;
      case TokKind::kLt: op = BinOp::kLt; break;
      case TokKind::kLe: op = BinOp::kLe; break;
      case TokKind::kGt: op = BinOp::kGt; break;
      case TokKind::kGe: op = BinOp::kGe; break;
      default: return lhs;
    }
    Next();
    auto rhs = ParseAdditive();
    if (rhs == nullptr) return nullptr;
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  std::unique_ptr<Expr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (lhs == nullptr) return nullptr;
    while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
      const BinOp op =
          Next().kind == TokKind::kPlus ? BinOp::kAdd : BinOp::kSub;
      auto rhs = ParseMultiplicative();
      if (rhs == nullptr) return nullptr;
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  std::unique_ptr<Expr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (lhs == nullptr) return nullptr;
    while (Peek().kind == TokKind::kStar || Peek().kind == TokKind::kSlash ||
           Peek().kind == TokKind::kPercent) {
      BinOp op = BinOp::kMul;
      if (Peek().kind == TokKind::kSlash) op = BinOp::kDiv;
      if (Peek().kind == TokKind::kPercent) op = BinOp::kMod;
      Next();
      auto rhs = ParseUnary();
      if (rhs == nullptr) return nullptr;
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  std::unique_ptr<Expr> ParseUnary() {
    if (Peek().kind == TokKind::kMinus) {
      if (!CheckDepth()) return nullptr;
      NestingScope scope(&expr_depth_);
      Next();
      auto operand = ParseUnary();
      if (operand == nullptr) return nullptr;
      return Expr::Neg(std::move(operand));
    }
    return ParsePrimary();
  }

  std::unique_ptr<Expr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        const Token tok = Next();
        if (tok.number_is_int) return Expr::Literal(Value(tok.int_value));
        return Expr::Literal(Value(tok.number));
      }
      case TokKind::kString: {
        return Expr::Literal(Value(Next().text));
      }
      case TokKind::kLParen: {
        Next();
        auto inner = ParseExpr();
        if (inner == nullptr) return nullptr;
        if (!Expect(TokKind::kRParen, "')'")) return nullptr;
        return inner;
      }
      case TokKind::kStar: {
        Next();
        return Expr::Star();
      }
      case TokKind::kIdent: {
        const std::string name = Next().text;
        if (Peek().kind != TokKind::kLParen) return Expr::Column(name);
        Next();  // '('
        // SQL's `count(distinct x)` form: the DISTINCT keyword selects
        // the set-semantics variant of the aggregate (Section IV-D).
        bool distinct = false;
        if (PeekKeyword("distinct")) {
          Next();
          distinct = true;
        }
        std::vector<std::unique_ptr<Expr>> args;
        if (Peek().kind != TokKind::kRParen) {
          while (true) {
            auto arg = ParseExpr();
            if (arg == nullptr) return nullptr;
            args.push_back(std::move(arg));
            if (Peek().kind != TokKind::kComma) break;
            Next();
          }
        }
        if (!Expect(TokKind::kRParen, "')' after call arguments")) {
          return nullptr;
        }
        if (distinct) {
          if (args.empty()) {
            error_ = "DISTINCT requires an argument";
            return nullptr;
          }
          return Expr::Call(name + "_distinct", std::move(args));
        }
        return Expr::Call(name, std::move(args));
      }
      default:
        error_ = "expected expression at offset " + std::to_string(t.pos);
        return nullptr;
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
  int expr_depth_ = 0;
  std::string error_;
};

}  // namespace

ParseResult ParseQuery(const std::string& text) {
  if (text.size() > kMaxGsqlBytes) {
    ParseResult result;
    result.error = "query text is " + std::to_string(text.size()) +
                   " bytes, over the " + std::to_string(kMaxGsqlBytes) +
                   " byte limit";
    return result;
  }
  Lexer lexer(text);
  std::string error;
  if (!lexer.Run(&error)) {
    ParseResult result;
    result.error = error;
    return result;
  }
  Parser parser(lexer.Take());
  return parser.ParseQueryText();
}

ExprParseResult ParseExpressionOnly(const std::string& text) {
  Lexer lexer(text);
  std::string error;
  if (!lexer.Run(&error)) {
    ExprParseResult result;
    result.error = error;
    return result;
  }
  Parser parser(lexer.Take());
  return parser.ParseExprOnlyText();
}

}  // namespace fwdecay::dsms
