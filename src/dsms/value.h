#ifndef FWDECAY_DSMS_VALUE_H_
#define FWDECAY_DSMS_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "util/bytes.h"

namespace fwdecay::dsms {

/// Runtime value in the GSQL engine: 64-bit integer, double, or string.
///
/// Integer arithmetic stays in integers (so `time/60` is the paper's
/// time-bucket truncation and `time % 60` its in-bucket offset); mixing
/// an integer with a double promotes to double.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  explicit Value(std::int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  std::int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Human-readable rendering (integers without decimals).
  std::string ToString() const;

  /// Hash for group-by keys.
  std::uint64_t Hash() const;

  /// Serializes as a tagged frame (0 = int, 1 = double, 2 = string).
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a value; nullopt on truncated/corrupt input.
  static std::optional<Value> Deserialize(ByteReader* reader);

  friend bool operator==(const Value& a, const Value& b);

  // Arithmetic with int/double promotion; CHECK-fails on strings.
  friend Value operator+(const Value& a, const Value& b);
  friend Value operator-(const Value& a, const Value& b);
  friend Value operator*(const Value& a, const Value& b);
  friend Value operator/(const Value& a, const Value& b);
  friend Value operator%(const Value& a, const Value& b);

  // Ordering comparison: -1, 0, +1. Strings compare lexicographically;
  // numerics numerically.
  friend int Compare(const Value& a, const Value& b);

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

/// Namespace-scope declaration so Compare can be named with
/// qualification (the in-class friend is otherwise ADL-only).
int Compare(const Value& a, const Value& b);

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_VALUE_H_
