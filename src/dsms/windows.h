#ifndef FWDECAY_DSMS_WINDOWS_H_
#define FWDECAY_DSMS_WINDOWS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>

#include "dsms/engine.h"

// The remaining window semantics the paper's related-work section
// attributes to Aurora (Section VII): alongside tumbling windows
// (dsms/tumbling.h) these are *sliding* windows, which overlap, and
// *latched* windows, which are tumbling with preserved internal state.
// Forward decay composes with any of them — the runner only decides when
// results are emitted; the aggregates inside are unchanged.

namespace fwdecay::dsms {

/// Overlapping sliding windows of `width_seconds`, advancing every
/// `slide_seconds` (slide <= width). Each window [k*slide, k*slide+width)
/// gets its own execution; a packet feeds every window covering its
/// timestamp; a window emits when the event-time watermark passes its
/// end plus the out-of-order slack.
class SlidingRunner {
 public:
  using EmitFn =
      std::function<void(double window_start, double window_end, ResultSet)>;

  SlidingRunner(const CompiledQuery* plan, double width_seconds,
                double slide_seconds, EmitFn emit,
                double slack_seconds = 0.0);

  /// Routes one packet to all covering windows; may emit windows.
  void Consume(const Packet& p);

  /// Emits every still-open window (end of stream).
  void Flush();

  std::size_t open_windows() const { return open_.size(); }
  std::uint64_t late_drops() const { return late_drops_; }

 private:
  void EmitReady();

  const CompiledQuery* plan_;
  double width_;
  double slide_;
  double slack_;
  EmitFn emit_;
  double watermark_ = -std::numeric_limits<double>::infinity();
  std::int64_t next_unemitted_ = std::numeric_limits<std::int64_t>::min();
  std::uint64_t late_drops_ = 0;
  // Window k covers [k*slide, k*slide + width).
  std::map<std::int64_t, std::unique_ptr<QueryExecution>> open_;
};

/// Latched windows: one long-lived execution whose cumulative state is
/// snapshotted every `bucket_seconds` — "tumbling with preserved internal
/// states" in Aurora's terms. Emits a cumulative ResultSet per bucket.
class LatchedRunner {
 public:
  using EmitFn = std::function<void(std::int64_t bucket, ResultSet)>;

  LatchedRunner(const CompiledQuery* plan, double bucket_seconds,
                EmitFn emit);

  /// Feeds the cumulative execution; snapshots at bucket boundaries.
  void Consume(const Packet& p);

  /// Emits the final cumulative snapshot.
  void Flush();

 private:
  double bucket_seconds_;
  EmitFn emit_;
  std::int64_t current_bucket_ = std::numeric_limits<std::int64_t>::min();
  std::unique_ptr<QueryExecution> exec_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_WINDOWS_H_
