#ifndef FWDECAY_DSMS_TRACE_IO_H_
#define FWDECAY_DSMS_TRACE_IO_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dsms/batch.h"
#include "dsms/packet.h"

// Binary packet-trace files: record and replay workloads so experiments
// are repeatable across machines (and so externally captured traces can
// be fed to the engine in place of the synthetic generator).
//
// Format "FWDTRC02": 8-byte magic, u64 packet count, fixed-width
// little-endian 29-byte records, trailing CRC32C over all preceding
// bytes; written atomically through FaultFs. "FWDTRC01" files (no CRC)
// still read back. DESIGN.md §6.3 has the normative byte-layout tables.

namespace fwdecay::dsms {

/// Writes the trace; returns false (and sets *error) on I/O failure.
bool WriteTrace(const std::string& path, const std::vector<Packet>& packets,
                std::string* error);

/// Reads a trace; nullopt (and *error) on missing/corrupt/truncated files.
std::optional<std::vector<Packet>> ReadTrace(const std::string& path,
                                             std::string* error);

/// Writes a trace from columnar batches, concatenated in order. The
/// file is byte-identical to WriteTrace over the flattened packets.
bool WriteTrace(const std::string& path,
                const std::vector<PacketBatch>& batches, std::string* error);

/// Reads a trace into batches of `batch_capacity` packets each (the
/// last batch may be partial). Same validation as ReadTrace.
std::optional<std::vector<PacketBatch>> ReadTraceBatches(
    const std::string& path, std::size_t batch_capacity, std::string* error);

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_TRACE_IO_H_
