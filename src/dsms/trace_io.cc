#include "dsms/trace_io.h"

#include <algorithm>
#include <cstring>

#include "util/bytes.h"
#include "util/crc32c.h"
#include "util/fault_fs.h"

namespace fwdecay::dsms {

namespace {

constexpr char kMagicV1[8] = {'F', 'W', 'D', 'T', 'R', 'C', '0', '1'};
constexpr char kMagicV2[8] = {'F', 'W', 'D', 'T', 'R', 'C', '0', '2'};
constexpr std::size_t kHeaderBytes = sizeof(kMagicV2) + 8;  // magic + count
constexpr std::size_t kRecordBytes = 29;  // f64 + 5*u32 + u8
constexpr std::size_t kCrcBytes = 4;

void AppendPacket(ByteWriter* w, const Packet& p) {
  w->WriteDouble(p.time);
  w->WriteU32(p.src_ip);
  w->WriteU32(p.dest_ip);
  w->WriteU32(p.src_port);   // widened for alignment-free simplicity
  w->WriteU32(p.dest_port);
  w->WriteU32(p.len);
  w->WriteU8(p.protocol);
}

bool ParsePacket(ByteReader* r, Packet* p) {
  std::uint32_t src_port = 0;
  std::uint32_t dest_port = 0;
  std::uint8_t protocol = 0;
  if (!r->ReadDouble(&p->time) || !r->ReadU32(&p->src_ip) ||
      !r->ReadU32(&p->dest_ip) || !r->ReadU32(&src_port) ||
      !r->ReadU32(&dest_port) || !r->ReadU32(&p->len) ||
      !r->ReadU8(&protocol)) {
    return false;
  }
  if (src_port > 0xffff || dest_port > 0xffff) return false;
  p->src_port = static_cast<std::uint16_t>(src_port);
  p->dest_port = static_cast<std::uint16_t>(dest_port);
  p->protocol = protocol;
  return true;
}

// Parses `count` records from `r` and checks the stream is fully
// consumed. The count was already bounds-checked against the remaining
// byte count, so reserve() here cannot be driven past the file size.
std::optional<std::vector<Packet>> ParseRecords(ByteReader* r,
                                                std::uint64_t count,
                                                const std::string& path,
                                                std::string* error) {
  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Packet p;
    if (!ParsePacket(r, &p)) {
      *error = "truncated or corrupt record in '" + path + "'";
      return std::nullopt;
    }
    packets.push_back(p);
  }
  if (!r->Exhausted()) {
    *error = "trailing bytes in '" + path + "'";
    return std::nullopt;
  }
  return packets;
}

}  // namespace

bool WriteTrace(const std::string& path, const std::vector<Packet>& packets,
                std::string* error) {
  // v2 frame: magic, count, records, then a trailing CRC32C over every
  // preceding byte. Written through the fault-injectable atomic-rename
  // path, so a crash mid-write leaves the previous trace (or nothing),
  // never a torn file that parses.
  ByteWriter w;
  for (char c : kMagicV2) w.WriteU8(static_cast<std::uint8_t>(c));
  w.WriteU64(packets.size());
  for (const Packet& p : packets) AppendPacket(&w, p);
  const std::uint32_t crc = Crc32c(w.bytes().data(), w.bytes().size());
  w.WriteU32(crc);
  return FaultFs::Instance().AtomicWriteFile(path, w.bytes(), error);
}

bool WriteTrace(const std::string& path,
                const std::vector<PacketBatch>& batches, std::string* error) {
  ByteWriter w;
  for (char c : kMagicV2) w.WriteU8(static_cast<std::uint8_t>(c));
  std::uint64_t total = 0;
  for (const PacketBatch& b : batches) total += b.size();
  w.WriteU64(total);
  for (const PacketBatch& b : batches) {
    for (std::size_t i = 0; i < b.size(); ++i) AppendPacket(&w, b.Get(i));
  }
  const std::uint32_t crc = Crc32c(w.bytes().data(), w.bytes().size());
  w.WriteU32(crc);
  return FaultFs::Instance().AtomicWriteFile(path, w.bytes(), error);
}

std::optional<std::vector<PacketBatch>> ReadTraceBatches(
    const std::string& path, std::size_t batch_capacity, std::string* error) {
  if (batch_capacity == 0) {
    *error = "batch capacity must be positive";
    return std::nullopt;
  }
  // Trace reading is I/O- and validation-bound; rebatching the parsed
  // rows costs one extra pass and keeps a single format decoder.
  auto packets = ReadTrace(path, error);
  if (!packets) return std::nullopt;
  std::vector<PacketBatch> batches;
  batches.reserve(packets->size() / batch_capacity + 1);
  for (std::size_t i = 0; i < packets->size(); i += batch_capacity) {
    PacketBatch batch(batch_capacity);
    const std::size_t end = std::min(i + batch_capacity, packets->size());
    for (std::size_t j = i; j < end; ++j) batch.Append((*packets)[j]);
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::optional<std::vector<Packet>> ReadTrace(const std::string& path,
                                             std::string* error) {
  std::vector<std::uint8_t> bytes;
  if (!FaultFs::Instance().ReadFile(path, &bytes, error)) return std::nullopt;
  if (bytes.size() < kHeaderBytes) {
    *error = "'" + path + "' is not a fwdecay trace (too short)";
    return std::nullopt;
  }

  if (std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    if (bytes.size() < kHeaderBytes + kCrcBytes) {
      *error = "'" + path + "' is truncated before its checksum";
      return std::nullopt;
    }
    const std::size_t body_len = bytes.size() - kCrcBytes;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + body_len, kCrcBytes);
    if (Crc32c(bytes.data(), body_len) != stored_crc) {
      *error = "CRC mismatch in '" + path + "' (torn or corrupt write)";
      return std::nullopt;
    }
    ByteReader r(bytes.data() + sizeof(kMagicV2),
                 body_len - sizeof(kMagicV2));
    std::uint64_t count = 0;
    if (!r.ReadU64(&count)) {
      *error = "truncated header in '" + path + "'";
      return std::nullopt;
    }
    // Reject a hostile count before any allocation: the records must fit
    // in the bytes actually present.
    if (count > r.Remaining() / kRecordBytes) {
      *error = "'" + path + "' declares more packets than the file holds";
      return std::nullopt;
    }
    return ParseRecords(&r, count, path, error);
  }

  if (std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    // Read-side back-compat for pre-checksum traces (no CRC to verify;
    // per-record bounds checks still apply).
    ByteReader r(bytes.data() + sizeof(kMagicV1),
                 bytes.size() - sizeof(kMagicV1));
    std::uint64_t count = 0;
    if (!r.ReadU64(&count)) {
      *error = "truncated header in '" + path + "'";
      return std::nullopt;
    }
    if (count > r.Remaining() / kRecordBytes) {
      *error = "'" + path + "' declares more packets than the file holds";
      return std::nullopt;
    }
    return ParseRecords(&r, count, path, error);
  }

  *error = "'" + path + "' has a bad magic header";
  return std::nullopt;
}

}  // namespace fwdecay::dsms
