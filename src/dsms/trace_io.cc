#include "dsms/trace_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/bytes.h"

namespace fwdecay::dsms {

namespace {

constexpr char kMagic[8] = {'F', 'W', 'D', 'T', 'R', 'C', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void AppendPacket(ByteWriter* w, const Packet& p) {
  w->WriteDouble(p.time);
  w->WriteU32(p.src_ip);
  w->WriteU32(p.dest_ip);
  w->WriteU32(p.src_port);   // widened for alignment-free simplicity
  w->WriteU32(p.dest_port);
  w->WriteU32(p.len);
  w->WriteU8(p.protocol);
}

bool ParsePacket(ByteReader* r, Packet* p) {
  std::uint32_t src_port = 0;
  std::uint32_t dest_port = 0;
  std::uint8_t protocol = 0;
  if (!r->ReadDouble(&p->time) || !r->ReadU32(&p->src_ip) ||
      !r->ReadU32(&p->dest_ip) || !r->ReadU32(&src_port) ||
      !r->ReadU32(&dest_port) || !r->ReadU32(&p->len) ||
      !r->ReadU8(&protocol)) {
    return false;
  }
  if (src_port > 0xffff || dest_port > 0xffff) return false;
  p->src_port = static_cast<std::uint16_t>(src_port);
  p->dest_port = static_cast<std::uint16_t>(dest_port);
  p->protocol = protocol;
  return true;
}

}  // namespace

bool WriteTrace(const std::string& path, const std::vector<Packet>& packets,
                std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  ByteWriter w;
  for (char c : kMagic) w.WriteU8(static_cast<std::uint8_t>(c));
  w.WriteU64(packets.size());
  for (const Packet& p : packets) AppendPacket(&w, p);
  const auto& bytes = w.bytes();
  if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    *error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

std::optional<std::vector<Packet>> ReadTrace(const std::string& path,
                                             std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < static_cast<long>(sizeof(kMagic) + 8)) {
    *error = "'" + path + "' is not a fwdecay trace (too short)";
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    *error = "short read from '" + path + "'";
    return std::nullopt;
  }
  ByteReader r(bytes);
  char magic[8];
  for (char& c : magic) {
    std::uint8_t b = 0;
    if (!r.ReadU8(&b)) return std::nullopt;
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    *error = "'" + path + "' has a bad magic header";
    return std::nullopt;
  }
  std::uint64_t count = 0;
  if (!r.ReadU64(&count)) {
    *error = "truncated header in '" + path + "'";
    return std::nullopt;
  }
  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Packet p;
    if (!ParsePacket(&r, &p)) {
      *error = "truncated or corrupt record in '" + path + "'";
      return std::nullopt;
    }
    packets.push_back(p);
  }
  if (!r.Exhausted()) {
    *error = "trailing bytes in '" + path + "'";
    return std::nullopt;
  }
  return packets;
}

}  // namespace fwdecay::dsms
