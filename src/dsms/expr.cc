#include "dsms/expr.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/check.h"

namespace fwdecay::dsms {

std::unique_ptr<Expr> Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::AggRef(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggRef;
  e->agg_index = index;
  return e;
}

std::unique_ptr<Expr> Expr::GroupRef(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kGroupRef;
  e->group_index = index;
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::Neg(std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNeg;
  e->args.push_back(std::move(operand));
  return e;
}

std::unique_ptr<Expr> Expr::Call(std::string func,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->name = std::move(func);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->name = name;
  e->literal = literal;
  e->op = op;
  e->agg_index = agg_index;
  e->group_index = group_index;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

const char* OpText(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

}  // namespace

bool Expr::ContainsCall(const std::vector<std::string>& agg_names) const {
  if (kind == Kind::kCall) {
    const std::string lower = Lower(name);
    for (const std::string& agg : agg_names) {
      if (lower == agg) return true;
    }
  }
  for (const auto& a : args) {
    if (a->ContainsCall(agg_names)) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return Lower(name);
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kStar:
      return "*";
    case Kind::kAggRef:
      return "$agg" + std::to_string(agg_index);
    case Kind::kGroupRef:
      return "$grp" + std::to_string(group_index);
    case Kind::kNeg: {
      std::string s = "(-";
      s += args[0]->ToString();
      s += ")";
      return s;
    }
    case Kind::kBinary: {
      std::string s = "(";
      s += args[0]->ToString();
      s += " ";
      s += OpText(op);
      s += " ";
      s += args[1]->ToString();
      s += ")";
      return s;
    }
    case Kind::kCall: {
      std::string s = Lower(name) + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

bool IsKnownColumn(const std::string& name) {
  const std::string n = Lower(name);
  return n == "time" || n == "dtime" || n == "srcip" || n == "destip" ||
         n == "srcport" || n == "destport" || n == "len" || n == "protocol";
}

Value ReadColumn(const std::string& name, const Packet& p) {
  const std::string n = Lower(name);
  if (n == "time") return Value(static_cast<std::int64_t>(p.time));
  if (n == "dtime") return Value(p.time);
  if (n == "srcip") return Value(static_cast<std::int64_t>(p.src_ip));
  if (n == "destip") return Value(static_cast<std::int64_t>(p.dest_ip));
  if (n == "srcport") return Value(static_cast<std::int64_t>(p.src_port));
  if (n == "destport") return Value(static_cast<std::int64_t>(p.dest_port));
  if (n == "len") return Value(static_cast<std::int64_t>(p.len));
  if (n == "protocol") return Value(static_cast<std::int64_t>(p.protocol));
  FWDECAY_CHECK_MSG(false, "unknown column");
  return Value();
}

namespace {

// Applies a built-in scalar function to already-evaluated arguments;
// shared by the per-tuple and post-aggregation evaluators.
Value ApplyScalarFn(const std::string& name, const std::vector<Value>& args) {
  const std::string fn = Lower(name);
  auto arg = [&](std::size_t i) {
    FWDECAY_CHECK_MSG(i < args.size(), "missing scalar function argument");
    return args[i];
  };
  if (fn == "exp") return Value(std::exp(arg(0).AsDouble()));
  if (fn == "ln") return Value(std::log(arg(0).AsDouble()));
  if (fn == "sqrt") return Value(std::sqrt(arg(0).AsDouble()));
  if (fn == "abs") return Value(std::fabs(arg(0).AsDouble()));
  if (fn == "floor") {
    return Value(static_cast<std::int64_t>(std::floor(arg(0).AsDouble())));
  }
  if (fn == "pow") {
    return Value(std::pow(arg(0).AsDouble(), arg(1).AsDouble()));
  }
  // Syntactic sugar for forward-decay weights (Section IV suggests
  // exactly this kind of helper): the landmark is the start of the
  // `period`-long bucket containing t, so
  //   polyweight(time, 60, 2)  ==  (time % 60)^2
  //   expweight(time, 60, 0.1) ==  exp(0.1 * (time % 60))
  if (fn == "polyweight") {
    const double offset = std::fmod(arg(0).AsDouble(), arg(1).AsDouble());
    return Value(std::pow(offset, arg(2).AsDouble()));
  }
  if (fn == "expweight") {
    const double offset = std::fmod(arg(0).AsDouble(), arg(1).AsDouble());
    return Value(std::exp(arg(2).AsDouble() * offset));
  }
  FWDECAY_CHECK_MSG(false, "unknown scalar function (aggregates cannot be "
                           "evaluated per tuple)");
  return Value();
}

Value EvalScalarCall(const Expr& e, const Packet& p) {
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) args.push_back(EvalExpr(*a, p));
  return ApplyScalarFn(e.name, args);
}

}  // namespace

Value EvalExpr(const Expr& e, const Packet& p) {
  switch (e.kind) {
    case Expr::Kind::kColumn:
      return ReadColumn(e.name, p);
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kStar:
      return Value(std::int64_t{1});
    case Expr::Kind::kAggRef:
    case Expr::Kind::kGroupRef:
      FWDECAY_CHECK_MSG(false,
                        "post-aggregation placeholder evaluated per tuple — "
                        "use EvalPostExpr");
      return Value();
    case Expr::Kind::kNeg:
      return Value(std::int64_t{0}) - EvalExpr(*e.args[0], p);
    case Expr::Kind::kCall:
      return EvalScalarCall(e, p);
    case Expr::Kind::kBinary: {
      // Short-circuit logical operators.
      if (e.op == BinOp::kAnd) {
        return Value(std::int64_t{EvalPredicate(*e.args[0], p) &&
                                  EvalPredicate(*e.args[1], p)});
      }
      if (e.op == BinOp::kOr) {
        return Value(std::int64_t{EvalPredicate(*e.args[0], p) ||
                                  EvalPredicate(*e.args[1], p)});
      }
      const Value lhs = EvalExpr(*e.args[0], p);
      const Value rhs = EvalExpr(*e.args[1], p);
      switch (e.op) {
        case BinOp::kAdd: return lhs + rhs;
        case BinOp::kSub: return lhs - rhs;
        case BinOp::kMul: return lhs * rhs;
        case BinOp::kDiv: return lhs / rhs;
        case BinOp::kMod: return lhs % rhs;
        case BinOp::kEq: return Value(std::int64_t{lhs == rhs});
        case BinOp::kNe: return Value(std::int64_t{!(lhs == rhs)});
        case BinOp::kLt: return Value(std::int64_t{Compare(lhs, rhs) < 0});
        case BinOp::kLe: return Value(std::int64_t{Compare(lhs, rhs) <= 0});
        case BinOp::kGt: return Value(std::int64_t{Compare(lhs, rhs) > 0});
        case BinOp::kGe: return Value(std::int64_t{Compare(lhs, rhs) >= 0});
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      break;
    }
  }
  FWDECAY_CHECK_MSG(false, "unreachable expression kind");
  return Value();
}

bool EvalPredicate(const Expr& e, const Packet& p) {
  const Value v = EvalExpr(e, p);
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

Value EvalPostExpr(const Expr& e, const std::vector<Value>& agg_values,
                   const std::vector<Value>& group_key) {
  switch (e.kind) {
    case Expr::Kind::kAggRef:
      FWDECAY_CHECK(e.agg_index >= 0 &&
                    static_cast<std::size_t>(e.agg_index) <
                        agg_values.size());
      return agg_values[static_cast<std::size_t>(e.agg_index)];
    case Expr::Kind::kGroupRef:
      FWDECAY_CHECK(e.group_index >= 0 &&
                    static_cast<std::size_t>(e.group_index) <
                        group_key.size());
      return group_key[static_cast<std::size_t>(e.group_index)];
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kNeg:
      return Value(std::int64_t{0}) -
             EvalPostExpr(*e.args[0], agg_values, group_key);
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        args.push_back(EvalPostExpr(*a, agg_values, group_key));
      }
      return ApplyScalarFn(e.name, args);
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinOp::kAnd) {
        return Value(
            std::int64_t{EvalPostPredicate(*e.args[0], agg_values, group_key) &&
                         EvalPostPredicate(*e.args[1], agg_values, group_key)});
      }
      if (e.op == BinOp::kOr) {
        return Value(
            std::int64_t{EvalPostPredicate(*e.args[0], agg_values, group_key) ||
                         EvalPostPredicate(*e.args[1], agg_values, group_key)});
      }
      const Value lhs = EvalPostExpr(*e.args[0], agg_values, group_key);
      const Value rhs = EvalPostExpr(*e.args[1], agg_values, group_key);
      switch (e.op) {
        case BinOp::kAdd: return lhs + rhs;
        case BinOp::kSub: return lhs - rhs;
        case BinOp::kMul: return lhs * rhs;
        case BinOp::kDiv: return lhs / rhs;
        case BinOp::kMod: return lhs % rhs;
        case BinOp::kEq: return Value(std::int64_t{lhs == rhs});
        case BinOp::kNe: return Value(std::int64_t{!(lhs == rhs)});
        case BinOp::kLt: return Value(std::int64_t{Compare(lhs, rhs) < 0});
        case BinOp::kLe: return Value(std::int64_t{Compare(lhs, rhs) <= 0});
        case BinOp::kGt: return Value(std::int64_t{Compare(lhs, rhs) > 0});
        case BinOp::kGe: return Value(std::int64_t{Compare(lhs, rhs) >= 0});
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      break;
    }
    default:
      FWDECAY_CHECK_MSG(false,
                        "post-aggregate expressions may only combine "
                        "aggregate results, group columns and literals");
  }
  return Value();
}

bool EvalPostPredicate(const Expr& e, const std::vector<Value>& agg_values,
                       const std::vector<Value>& group_key) {
  const Value v = EvalPostExpr(e, agg_values, group_key);
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

}  // namespace fwdecay::dsms
