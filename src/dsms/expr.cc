#include "dsms/expr.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/check.h"
#include "util/simd.h"

namespace fwdecay::dsms {

std::unique_ptr<Expr> Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->name = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::AggRef(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggRef;
  e->agg_index = index;
  return e;
}

std::unique_ptr<Expr> Expr::GroupRef(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kGroupRef;
  e->group_index = index;
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::Neg(std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNeg;
  e->args.push_back(std::move(operand));
  return e;
}

std::unique_ptr<Expr> Expr::Call(std::string func,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->name = std::move(func);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->name = name;
  e->literal = literal;
  e->op = op;
  e->agg_index = agg_index;
  e->group_index = group_index;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

const char* OpText(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

}  // namespace

bool Expr::ContainsCall(const std::vector<std::string>& agg_names) const {
  if (kind == Kind::kCall) {
    const std::string lower = Lower(name);
    for (const std::string& agg : agg_names) {
      if (lower == agg) return true;
    }
  }
  for (const auto& a : args) {
    if (a->ContainsCall(agg_names)) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return Lower(name);
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kStar:
      return "*";
    case Kind::kAggRef:
      return "$agg" + std::to_string(agg_index);
    case Kind::kGroupRef:
      return "$grp" + std::to_string(group_index);
    case Kind::kNeg: {
      std::string s = "(-";
      s += args[0]->ToString();
      s += ")";
      return s;
    }
    case Kind::kBinary: {
      std::string s = "(";
      s += args[0]->ToString();
      s += " ";
      s += OpText(op);
      s += " ";
      s += args[1]->ToString();
      s += ")";
      return s;
    }
    case Kind::kCall: {
      std::string s = Lower(name) + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

bool IsKnownColumn(const std::string& name) {
  const std::string n = Lower(name);
  return n == "time" || n == "dtime" || n == "srcip" || n == "destip" ||
         n == "srcport" || n == "destport" || n == "len" || n == "protocol";
}

Value ReadColumn(const std::string& name, const Packet& p) {
  const std::string n = Lower(name);
  if (n == "time") return Value(static_cast<std::int64_t>(p.time));
  if (n == "dtime") return Value(p.time);
  if (n == "srcip") return Value(static_cast<std::int64_t>(p.src_ip));
  if (n == "destip") return Value(static_cast<std::int64_t>(p.dest_ip));
  if (n == "srcport") return Value(static_cast<std::int64_t>(p.src_port));
  if (n == "destport") return Value(static_cast<std::int64_t>(p.dest_port));
  if (n == "len") return Value(static_cast<std::int64_t>(p.len));
  if (n == "protocol") return Value(static_cast<std::int64_t>(p.protocol));
  FWDECAY_CHECK_MSG(false, "unknown column");
  return Value();
}

namespace {

// Built-in scalar functions, resolved from the call name once per
// expression (per batch in the batched evaluator) instead of re-matching
// the string per tuple.
enum class ScalarFn {
  kExp, kLn, kSqrt, kAbs, kFloor, kPow, kPolyweight, kExpweight,
};

// Case-insensitive match against a lowercase literal without building
// a lowered copy: the resolvers below run once per batch per expression
// node, and the batched evaluator must stay allocation-free.
bool NameIs(const std::string& name, const char* lower) {
  const char* p = lower;
  for (char c : name) {
    if (*p == '\0' ||
        std::tolower(static_cast<unsigned char>(c)) != *p) {
      return false;
    }
    ++p;
  }
  return *p == '\0';
}

ScalarFn ResolveScalarFn(const std::string& name) {
  if (NameIs(name, "exp")) return ScalarFn::kExp;
  if (NameIs(name, "ln")) return ScalarFn::kLn;
  if (NameIs(name, "sqrt")) return ScalarFn::kSqrt;
  if (NameIs(name, "abs")) return ScalarFn::kAbs;
  if (NameIs(name, "floor")) return ScalarFn::kFloor;
  if (NameIs(name, "pow")) return ScalarFn::kPow;
  if (NameIs(name, "polyweight")) return ScalarFn::kPolyweight;
  if (NameIs(name, "expweight")) return ScalarFn::kExpweight;
  FWDECAY_CHECK_MSG(false, "unknown scalar function (aggregates cannot be "
                           "evaluated per tuple)");
  return ScalarFn::kExp;
}

// Applies a resolved scalar function to already-evaluated arguments;
// shared by the per-tuple, post-aggregation and batched evaluators.
Value ApplyScalarFn(ScalarFn fn, const std::vector<Value>& args) {
  auto arg = [&](std::size_t i) {
    FWDECAY_CHECK_MSG(i < args.size(), "missing scalar function argument");
    return args[i];
  };
  switch (fn) {
    case ScalarFn::kExp: return Value(std::exp(arg(0).AsDouble()));
    case ScalarFn::kLn: return Value(std::log(arg(0).AsDouble()));
    case ScalarFn::kSqrt: return Value(std::sqrt(arg(0).AsDouble()));
    case ScalarFn::kAbs: return Value(std::fabs(arg(0).AsDouble()));
    case ScalarFn::kFloor:
      return Value(static_cast<std::int64_t>(std::floor(arg(0).AsDouble())));
    case ScalarFn::kPow:
      return Value(std::pow(arg(0).AsDouble(), arg(1).AsDouble()));
    // Syntactic sugar for forward-decay weights (Section IV suggests
    // exactly this kind of helper): the landmark is the start of the
    // `period`-long bucket containing t, so
    //   polyweight(time, 60, 2)  ==  (time % 60)^2
    //   expweight(time, 60, 0.1) ==  exp(0.1 * (time % 60))
    case ScalarFn::kPolyweight: {
      const double offset = std::fmod(arg(0).AsDouble(), arg(1).AsDouble());
      return Value(std::pow(offset, arg(2).AsDouble()));
    }
    case ScalarFn::kExpweight: {
      const double offset = std::fmod(arg(0).AsDouble(), arg(1).AsDouble());
      return Value(std::exp(arg(2).AsDouble() * offset));
    }
  }
  FWDECAY_CHECK_MSG(false, "unreachable scalar function");
  return Value();
}

Value EvalScalarCall(const Expr& e, const Packet& p) {
  const ScalarFn fn = ResolveScalarFn(e.name);
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) args.push_back(EvalExpr(*a, p));
  return ApplyScalarFn(fn, args);
}

}  // namespace

Value EvalExpr(const Expr& e, const Packet& p) {
  switch (e.kind) {
    case Expr::Kind::kColumn:
      return ReadColumn(e.name, p);
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kStar:
      return Value(std::int64_t{1});
    case Expr::Kind::kAggRef:
    case Expr::Kind::kGroupRef:
      FWDECAY_CHECK_MSG(false,
                        "post-aggregation placeholder evaluated per tuple — "
                        "use EvalPostExpr");
      return Value();
    case Expr::Kind::kNeg:
      return Value(std::int64_t{0}) - EvalExpr(*e.args[0], p);
    case Expr::Kind::kCall:
      return EvalScalarCall(e, p);
    case Expr::Kind::kBinary: {
      // Short-circuit logical operators.
      if (e.op == BinOp::kAnd) {
        return Value(std::int64_t{EvalPredicate(*e.args[0], p) &&
                                  EvalPredicate(*e.args[1], p)});
      }
      if (e.op == BinOp::kOr) {
        return Value(std::int64_t{EvalPredicate(*e.args[0], p) ||
                                  EvalPredicate(*e.args[1], p)});
      }
      const Value lhs = EvalExpr(*e.args[0], p);
      const Value rhs = EvalExpr(*e.args[1], p);
      switch (e.op) {
        case BinOp::kAdd: return lhs + rhs;
        case BinOp::kSub: return lhs - rhs;
        case BinOp::kMul: return lhs * rhs;
        case BinOp::kDiv: return lhs / rhs;
        case BinOp::kMod: return lhs % rhs;
        case BinOp::kEq: return Value(std::int64_t{lhs == rhs});
        case BinOp::kNe: return Value(std::int64_t{!(lhs == rhs)});
        case BinOp::kLt: return Value(std::int64_t{Compare(lhs, rhs) < 0});
        case BinOp::kLe: return Value(std::int64_t{Compare(lhs, rhs) <= 0});
        case BinOp::kGt: return Value(std::int64_t{Compare(lhs, rhs) > 0});
        case BinOp::kGe: return Value(std::int64_t{Compare(lhs, rhs) >= 0});
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      break;
    }
  }
  FWDECAY_CHECK_MSG(false, "unreachable expression kind");
  return Value();
}

bool EvalPredicate(const Expr& e, const Packet& p) {
  const Value v = EvalExpr(e, p);
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

Value EvalPostExpr(const Expr& e, const std::vector<Value>& agg_values,
                   const std::vector<Value>& group_key) {
  switch (e.kind) {
    case Expr::Kind::kAggRef:
      FWDECAY_CHECK(e.agg_index >= 0 &&
                    static_cast<std::size_t>(e.agg_index) <
                        agg_values.size());
      return agg_values[static_cast<std::size_t>(e.agg_index)];
    case Expr::Kind::kGroupRef:
      FWDECAY_CHECK(e.group_index >= 0 &&
                    static_cast<std::size_t>(e.group_index) <
                        group_key.size());
      return group_key[static_cast<std::size_t>(e.group_index)];
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kNeg:
      return Value(std::int64_t{0}) -
             EvalPostExpr(*e.args[0], agg_values, group_key);
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        args.push_back(EvalPostExpr(*a, agg_values, group_key));
      }
      return ApplyScalarFn(ResolveScalarFn(e.name), args);
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinOp::kAnd) {
        return Value(
            std::int64_t{EvalPostPredicate(*e.args[0], agg_values, group_key) &&
                         EvalPostPredicate(*e.args[1], agg_values, group_key)});
      }
      if (e.op == BinOp::kOr) {
        return Value(
            std::int64_t{EvalPostPredicate(*e.args[0], agg_values, group_key) ||
                         EvalPostPredicate(*e.args[1], agg_values, group_key)});
      }
      const Value lhs = EvalPostExpr(*e.args[0], agg_values, group_key);
      const Value rhs = EvalPostExpr(*e.args[1], agg_values, group_key);
      switch (e.op) {
        case BinOp::kAdd: return lhs + rhs;
        case BinOp::kSub: return lhs - rhs;
        case BinOp::kMul: return lhs * rhs;
        case BinOp::kDiv: return lhs / rhs;
        case BinOp::kMod: return lhs % rhs;
        case BinOp::kEq: return Value(std::int64_t{lhs == rhs});
        case BinOp::kNe: return Value(std::int64_t{!(lhs == rhs)});
        case BinOp::kLt: return Value(std::int64_t{Compare(lhs, rhs) < 0});
        case BinOp::kLe: return Value(std::int64_t{Compare(lhs, rhs) <= 0});
        case BinOp::kGt: return Value(std::int64_t{Compare(lhs, rhs) > 0});
        case BinOp::kGe: return Value(std::int64_t{Compare(lhs, rhs) >= 0});
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      break;
    }
    default:
      FWDECAY_CHECK_MSG(false,
                        "post-aggregate expressions may only combine "
                        "aggregate results, group columns and literals");
  }
  return Value();
}

bool EvalPostPredicate(const Expr& e, const std::vector<Value>& agg_values,
                       const std::vector<Value>& group_key) {
  const Value v = EvalPostExpr(e, agg_values, group_key);
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

// ---------------------------------------------------------------------------
// Batched evaluation
// ---------------------------------------------------------------------------

namespace {

bool Truthy(const Value& v) {
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  return !v.AsString().empty();
}

// Packet schema columns, resolved from the name once per batch. Mirrors
// ReadColumn exactly (same types, same int widening).
enum class ColumnId {
  kTime, kDtime, kSrcIp, kDestIp, kSrcPort, kDestPort, kLen, kProtocol,
};

ColumnId ResolveColumn(const std::string& name) {
  if (NameIs(name, "time")) return ColumnId::kTime;
  if (NameIs(name, "dtime")) return ColumnId::kDtime;
  if (NameIs(name, "srcip")) return ColumnId::kSrcIp;
  if (NameIs(name, "destip")) return ColumnId::kDestIp;
  if (NameIs(name, "srcport")) return ColumnId::kSrcPort;
  if (NameIs(name, "destport")) return ColumnId::kDestPort;
  if (NameIs(name, "len")) return ColumnId::kLen;
  if (NameIs(name, "protocol")) return ColumnId::kProtocol;
  FWDECAY_CHECK_MSG(false, "unknown column");
  return ColumnId::kTime;
}

// Gathers a schema column into typed storage: every column is int64
// (same widening as ReadColumn) except dtime, which is double.
void ReadColumnBatch(ColumnId col, const PacketBatch& batch,
                     const std::uint32_t* sel, std::size_t n,
                     ValueColumn* out) {
  if (col == ColumnId::kDtime) {
    double* dst = out->AppendF64(n);
    const double* t = batch.time();
    for (std::size_t i = 0; i < n; ++i) dst[i] = t[sel[i]];
    return;
  }
  std::int64_t* dst = out->AppendI64(n);
  switch (col) {
    case ColumnId::kTime: {
      const double* t = batch.time();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(t[sel[i]]);
      }
      return;
    }
    case ColumnId::kDtime:
      return;  // handled above
    case ColumnId::kSrcIp: {
      const std::uint32_t* c = batch.src_ip();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(c[sel[i]]);
      }
      return;
    }
    case ColumnId::kDestIp: {
      const std::uint32_t* c = batch.dest_ip();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(c[sel[i]]);
      }
      return;
    }
    case ColumnId::kSrcPort: {
      const std::uint16_t* c = batch.src_port();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(c[sel[i]]);
      }
      return;
    }
    case ColumnId::kDestPort: {
      const std::uint16_t* c = batch.dest_port();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(c[sel[i]]);
      }
      return;
    }
    case ColumnId::kLen: {
      const std::uint32_t* c = batch.len();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(c[sel[i]]);
      }
      return;
    }
    case ColumnId::kProtocol: {
      const std::uint8_t* c = batch.protocol();
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::int64_t>(c[sel[i]]);
      }
      return;
    }
  }
}

// RAII pool borrow, so early CHECK-aborts cannot leak pool entries on
// the normal path and the release calls cannot be forgotten.
class ScratchColumn {
 public:
  explicit ScratchColumn(BatchEvalScratch* scratch)
      : scratch_(scratch), col_(scratch->AcquireColumn()) {}
  ~ScratchColumn() { scratch_->ReleaseColumn(col_); }
  ScratchColumn(const ScratchColumn&) = delete;
  ScratchColumn& operator=(const ScratchColumn&) = delete;
  ValueColumn* get() { return col_; }
  ValueColumn* operator->() { return col_; }
  ValueColumn& operator*() { return *col_; }

 private:
  BatchEvalScratch* scratch_;
  ValueColumn* col_;
};

class ScratchIndex {
 public:
  explicit ScratchIndex(BatchEvalScratch* scratch)
      : scratch_(scratch), idx_(scratch->AcquireIndex()) {}
  ~ScratchIndex() { scratch_->ReleaseIndex(idx_); }
  ScratchIndex(const ScratchIndex&) = delete;
  ScratchIndex& operator=(const ScratchIndex&) = delete;
  std::vector<std::uint32_t>* get() { return idx_; }
  std::vector<std::uint32_t>* operator->() { return idx_; }
  std::vector<std::uint32_t>& operator*() { return *idx_; }

 private:
  BatchEvalScratch* scratch_;
  std::vector<std::uint32_t>* idx_;
};

simd::CmpOp ToCmpOp(BinOp op) {
  switch (op) {
    case BinOp::kEq: return simd::CmpOp::kEq;
    case BinOp::kNe: return simd::CmpOp::kNe;
    case BinOp::kLt: return simd::CmpOp::kLt;
    case BinOp::kLe: return simd::CmpOp::kLe;
    case BinOp::kGt: return simd::CmpOp::kGt;
    case BinOp::kGe: return simd::CmpOp::kGe;
    default:
      FWDECAY_CHECK_MSG(false, "non-comparison operator in compare kernel");
      return simd::CmpOp::kEq;
  }
}

// Double view of a typed numeric column: kF64 columns are returned in
// place; kI64 columns are widened into `conv` — the same int→double
// promotion Value arithmetic performs on mixed operands.
const double* AsF64(const ValueColumn& col, std::size_t n,
                    ValueColumn* conv) {
  if (col.rep() == ValueColumn::Rep::kF64) return col.f64_data();
  double* dst = conv->AppendF64(n);
  const std::int64_t* src = col.i64_data();
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
  return dst;
}

// Per-row Value fallback for binary operators over boxed columns (mixed
// types or strings): exactly the per-tuple operator semantics.
void EvalBinaryBoxed(BinOp op, const ValueColumn& lhs, const ValueColumn& rhs,
                     std::size_t n, ValueColumn* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const Value a = lhs[i];
    const Value b = rhs[i];
    switch (op) {
      case BinOp::kAdd: out->push_back(a + b); break;
      case BinOp::kSub: out->push_back(a - b); break;
      case BinOp::kMul: out->push_back(a * b); break;
      case BinOp::kDiv: out->push_back(a / b); break;
      case BinOp::kMod: out->push_back(a % b); break;
      case BinOp::kEq: out->push_back(Value(std::int64_t{a == b})); break;
      case BinOp::kNe: out->push_back(Value(std::int64_t{!(a == b)})); break;
      case BinOp::kLt:
        out->push_back(Value(std::int64_t{Compare(a, b) < 0}));
        break;
      case BinOp::kLe:
        out->push_back(Value(std::int64_t{Compare(a, b) <= 0}));
        break;
      case BinOp::kGt:
        out->push_back(Value(std::int64_t{Compare(a, b) > 0}));
        break;
      case BinOp::kGe:
        out->push_back(Value(std::int64_t{Compare(a, b) >= 0}));
        break;
      case BinOp::kAnd:
      case BinOp::kOr:
        FWDECAY_CHECK_MSG(false, "unreachable logical operator");
        break;
    }
  }
}

}  // namespace

std::size_t EvalPredicateBatch(const Expr& e, const PacketBatch& batch,
                               std::uint32_t* sel, std::size_t n,
                               BatchEvalScratch* scratch) {
  if (e.kind == Expr::Kind::kBinary && e.op == BinOp::kAnd) {
    // Conjunction: the right operand sees only rows the left accepted —
    // the batched form of the per-tuple short-circuit.
    n = EvalPredicateBatch(*e.args[0], batch, sel, n, scratch);
    return EvalPredicateBatch(*e.args[1], batch, sel, n, scratch);
  }
  if (e.kind == Expr::Kind::kBinary && e.op == BinOp::kOr) {
    // Disjunction: rows the left operand accepted pass outright; the
    // right operand is evaluated only on the remaining rows, then the
    // two ascending accept lists are merged back into sel.
    ScratchIndex all(scratch);
    ScratchIndex rest(scratch);
    ScratchIndex merged(scratch);
    all->assign(sel, sel + n);
    const std::size_t n_lhs =
        EvalPredicateBatch(*e.args[0], batch, sel, n, scratch);
    // Ascending set difference: rows in `all` the left operand rejected.
    std::size_t a = 0;
    for (std::size_t i = 0; i < all->size(); ++i) {
      if (a < n_lhs && sel[a] == (*all)[i]) {
        ++a;
      } else {
        rest->push_back((*all)[i]);
      }
    }
    const std::size_t n_rhs = EvalPredicateBatch(
        *e.args[1], batch, rest->data(), rest->size(), scratch);
    merged->reserve(n_lhs + n_rhs);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < n_lhs || j < n_rhs) {
      if (j >= n_rhs || (i < n_lhs && sel[i] < (*rest)[j])) {
        merged->push_back(sel[i++]);
      } else {
        merged->push_back((*rest)[j++]);
      }
    }
    std::copy(merged->begin(), merged->end(), sel);
    return merged->size();
  }
  // Any other expression: evaluate as a column and keep the truthy rows.
  // Typed columns compact through the SIMD kernels (NaN is truthy, as in
  // the scalar Truthy); boxed columns fall back to the per-row test.
  ScratchColumn col(scratch);
  EvalExprBatch(e, batch, sel, n, scratch, col.get());
  switch (col->rep()) {
    case ValueColumn::Rep::kI64:
      return simd::CompactNonZeroI64(col->i64_data(), sel, n);
    case ValueColumn::Rep::kF64:
      return simd::CompactNonZeroF64(col->f64_data(), sel, n);
    case ValueColumn::Rep::kBoxed:
      break;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (Truthy(col->boxed_at(i))) sel[kept++] = sel[i];
  }
  return kept;
}

void EvalExprBatch(const Expr& e, const PacketBatch& batch,
                   const std::uint32_t* sel, std::size_t n,
                   BatchEvalScratch* scratch, ValueColumn* out) {
  out->clear();
  out->reserve(n);
  switch (e.kind) {
    case Expr::Kind::kColumn:
      ReadColumnBatch(ResolveColumn(e.name), batch, sel, n, out);
      return;
    case Expr::Kind::kLiteral:
      for (std::size_t i = 0; i < n; ++i) out->push_back(e.literal);
      return;
    case Expr::Kind::kStar: {
      std::int64_t* dst = out->AppendI64(n);
      for (std::size_t i = 0; i < n; ++i) dst[i] = 1;
      return;
    }
    case Expr::Kind::kAggRef:
    case Expr::Kind::kGroupRef:
      FWDECAY_CHECK_MSG(false,
                        "post-aggregation placeholder evaluated per tuple — "
                        "use EvalPostExpr");
      return;
    case Expr::Kind::kNeg: {
      ScratchColumn operand(scratch);
      EvalExprBatch(*e.args[0], batch, sel, n, scratch, operand.get());
      switch (operand->rep()) {
        case ValueColumn::Rep::kI64: {
          const std::int64_t* src = operand->i64_data();
          std::int64_t* dst = out->AppendI64(n);
          for (std::size_t i = 0; i < n; ++i) dst[i] = std::int64_t{0} - src[i];
          return;
        }
        case ValueColumn::Rep::kF64: {
          // Value(0) - Value(d) promotes the int zero: 0.0 - d, which
          // differs from -d on d == +0.0 — keep the subtraction form.
          const double* src = operand->f64_data();
          double* dst = out->AppendF64(n);
          for (std::size_t i = 0; i < n; ++i) dst[i] = 0.0 - src[i];
          return;
        }
        case ValueColumn::Rep::kBoxed:
          for (std::size_t i = 0; i < n; ++i) {
            out->push_back(Value(std::int64_t{0}) - operand->boxed_at(i));
          }
          return;
      }
      return;
    }
    case Expr::Kind::kCall: {
      const ScalarFn fn = ResolveScalarFn(e.name);
      // Evaluate every argument as a column, then apply the resolved
      // function row by row — scalar functions are libm-bound, so they
      // stay in stream order (the bit-exactness rule in util/simd.h).
      // The argument columns and the pointer list holding them come from
      // the scratch pools, so steady-state evaluation allocates nothing.
      std::vector<ValueColumn*>* arg_cols = scratch->AcquireColumnList();
      arg_cols->reserve(e.args.size());
      for (const auto& a : e.args) {
        arg_cols->push_back(scratch->AcquireColumn());
        EvalExprBatch(*a, batch, sel, n, scratch, arg_cols->back());
      }
      std::vector<Value>* row_args = scratch->RowArgsBuf();
      row_args->resize(e.args.size());
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t a = 0; a < arg_cols->size(); ++a) {
          (*row_args)[a] = (*(*arg_cols)[a])[i];
        }
        out->push_back(ApplyScalarFn(fn, *row_args));
      }
      for (ValueColumn* col : *arg_cols) scratch->ReleaseColumn(col);
      scratch->ReleaseColumnList(arg_cols);
      return;
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
        // Logical operators in value context: run the short-circuiting
        // selection machinery on a copy of the selection, then expand
        // the surviving-row set back into a 0/1 column.
        ScratchIndex accepted(scratch);
        accepted->assign(sel, sel + n);
        const std::size_t n_true =
            EvalPredicateBatch(e, batch, accepted->data(), n, scratch);
        std::int64_t* dst = out->AppendI64(n);
        std::size_t next = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const bool hit = next < n_true && (*accepted)[next] == sel[i];
          if (hit) ++next;
          dst[i] = hit ? 1 : 0;
        }
        return;
      }
      ScratchColumn lhs(scratch);
      ScratchColumn rhs(scratch);
      EvalExprBatch(*e.args[0], batch, sel, n, scratch, lhs.get());
      EvalExprBatch(*e.args[1], batch, sel, n, scratch, rhs.get());
      if (lhs->rep() == ValueColumn::Rep::kBoxed ||
          rhs->rep() == ValueColumn::Rep::kBoxed) {
        EvalBinaryBoxed(e.op, *lhs, *rhs, n, out);
        return;
      }
      if (lhs->rep() == ValueColumn::Rep::kI64 &&
          rhs->rep() == ValueColumn::Rep::kI64) {
        // Integer arithmetic stays in integers (Value promotion rules).
        const std::int64_t* a = lhs->i64_data();
        const std::int64_t* b = rhs->i64_data();
        switch (e.op) {
          case BinOp::kAdd:
            simd::AddI64(a, b, n, out->AppendI64(n));
            return;
          case BinOp::kSub:
            simd::SubI64(a, b, n, out->AppendI64(n));
            return;
          case BinOp::kMul: {
            std::int64_t* dst = out->AppendI64(n);
            for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
            return;
          }
          case BinOp::kDiv: {
            std::int64_t* dst = out->AppendI64(n);
            for (std::size_t i = 0; i < n; ++i) {
              FWDECAY_CHECK_MSG(b[i] != 0, "integer division by zero");
              dst[i] = a[i] / b[i];
            }
            return;
          }
          case BinOp::kMod: {
            std::int64_t* dst = out->AppendI64(n);
            for (std::size_t i = 0; i < n; ++i) {
              FWDECAY_CHECK_MSG(b[i] != 0, "integer modulo by zero");
              dst[i] = a[i] % b[i];
            }
            return;
          }
          case BinOp::kEq:
          case BinOp::kNe:
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe:
            simd::CmpI64(ToCmpOp(e.op), a, b, n, out->AppendI64(n));
            return;
          case BinOp::kAnd:
          case BinOp::kOr:
            break;  // handled above
        }
        FWDECAY_CHECK_MSG(false, "unreachable integer operator");
        return;
      }
      // At least one double operand: promote both sides to double,
      // exactly as mixed-type Value arithmetic does.
      ScratchColumn lconv(scratch);
      ScratchColumn rconv(scratch);
      const double* a = AsF64(*lhs, n, lconv.get());
      const double* b = AsF64(*rhs, n, rconv.get());
      switch (e.op) {
        case BinOp::kAdd:
          simd::AddF64(a, b, n, out->AppendF64(n));
          return;
        case BinOp::kSub:
          simd::SubF64(a, b, n, out->AppendF64(n));
          return;
        case BinOp::kMul:
          simd::MulF64(a, b, n, out->AppendF64(n));
          return;
        case BinOp::kDiv:
          simd::DivF64(a, b, n, out->AppendF64(n));
          return;
        case BinOp::kMod: {
          // fmod is libm — stays scalar in stream order.
          double* dst = out->AppendF64(n);
          for (std::size_t i = 0; i < n; ++i) dst[i] = std::fmod(a[i], b[i]);
          return;
        }
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
          simd::CmpF64(ToCmpOp(e.op), a, b, n, out->AppendI64(n));
          return;
        case BinOp::kAnd:
        case BinOp::kOr:
          break;  // handled above
      }
      FWDECAY_CHECK_MSG(false, "unreachable double operator");
      return;
    }
  }
  FWDECAY_CHECK_MSG(false, "unreachable expression kind");
}

}  // namespace fwdecay::dsms
