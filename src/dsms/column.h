#ifndef FWDECAY_DSMS_COLUMN_H_
#define FWDECAY_DSMS_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dsms/value.h"
#include "util/check.h"
#include "util/hash.h"

// Typed evaluation column for the batched ingest path (DESIGN.md §13.2).
//
// A ValueColumn stores one evaluated expression over a batch's selected
// rows. Packet fields and arithmetic over them are int64 or double for
// every row of a batch, so the column holds a flat typed vector the SIMD
// kernels (util/simd.h) can read and write directly; the boxed
// representation exists for string literals and mixed-type columns and
// falls back to the exact per-row Value semantics. Appending a value
// whose type disagrees with the column's current representation boxes
// the whole column — types are never coerced, so `is_int()`, hash seeds,
// and SumAgg's integer-exactness tracking observe the same Value types
// the per-tuple path produces.

namespace fwdecay::dsms {

class ValueColumn {
 public:
  enum class Rep : std::uint8_t { kI64, kF64, kBoxed };

  /// Lightweight row proxy: reads typed storage in place, converts to a
  /// Value only on demand. Mirrors the Value accessor contract (AsInt on
  /// a double row truncates; AsString CHECK-fails off strings).
  class RowRef {
   public:
    RowRef(const ValueColumn* col, std::size_t row) : col_(col), row_(row) {}

    bool is_int() const {
      switch (col_->rep_) {
        case Rep::kI64: return true;
        case Rep::kF64: return false;
        case Rep::kBoxed: return col_->boxed_[row_].is_int();
      }
      return false;
    }
    bool is_double() const {
      switch (col_->rep_) {
        case Rep::kI64: return false;
        case Rep::kF64: return true;
        case Rep::kBoxed: return col_->boxed_[row_].is_double();
      }
      return false;
    }
    bool is_string() const {
      return col_->rep_ == Rep::kBoxed && col_->boxed_[row_].is_string();
    }

    std::int64_t AsInt() const {
      switch (col_->rep_) {
        case Rep::kI64: return col_->i64_[row_];
        case Rep::kF64: return static_cast<std::int64_t>(col_->f64_[row_]);
        case Rep::kBoxed: return col_->boxed_[row_].AsInt();
      }
      return 0;
    }
    double AsDouble() const {
      switch (col_->rep_) {
        case Rep::kI64: return static_cast<double>(col_->i64_[row_]);
        case Rep::kF64: return col_->f64_[row_];
        case Rep::kBoxed: return col_->boxed_[row_].AsDouble();
      }
      return 0.0;
    }
    const std::string& AsString() const {
      FWDECAY_CHECK_MSG(col_->rep_ == Rep::kBoxed,
                        "typed column row used as string");
      return col_->boxed_[row_].AsString();
    }

    /// Identical to Value::Hash() on the equivalent Value (same seeds).
    std::uint64_t Hash() const {
      switch (col_->rep_) {
        case Rep::kI64:
          return HashU64(static_cast<std::uint64_t>(col_->i64_[row_]), 1);
        case Rep::kF64: {
          const double d = col_->f64_[row_];
          std::uint64_t bits;
          __builtin_memcpy(&bits, &d, sizeof(bits));
          return HashU64(bits, 2);
        }
        case Rep::kBoxed: return col_->boxed_[row_].Hash();
      }
      return 0;
    }

    operator Value() const {  // NOLINT(google-explicit-constructor)
      switch (col_->rep_) {
        case Rep::kI64: return Value(col_->i64_[row_]);
        case Rep::kF64: return Value(col_->f64_[row_]);
        case Rep::kBoxed: return col_->boxed_[row_];
      }
      return Value();
    }

    /// Equality with Value semantics (int/int exact, string vs
    /// non-string false, otherwise compared as doubles) without
    /// materializing Values for typed rows.
    friend bool operator==(const RowRef& a, const RowRef& b) {
      // Hidden friends see RowRef's privates but not ValueColumn's, so
      // this goes through the column's public typed accessors.
      if (a.col_->rep() != Rep::kBoxed && b.col_->rep() != Rep::kBoxed) {
        if (a.col_->rep() == Rep::kI64 && b.col_->rep() == Rep::kI64) {
          return a.col_->i64_data()[a.row_] == b.col_->i64_data()[b.row_];
        }
        return a.AsDouble() == b.AsDouble();
      }
      if (a.col_->rep() == Rep::kBoxed) {
        return b == a.col_->boxed_at(a.row_);
      }
      return a == b.col_->boxed_at(b.row_);
    }

    friend bool operator==(const RowRef& a, const Value& v) {
      switch (a.col_->rep()) {
        case Rep::kI64:
          if (v.is_string()) return false;
          if (v.is_int()) return a.col_->i64_data()[a.row_] == v.AsInt();
          return static_cast<double>(a.col_->i64_data()[a.row_]) ==
                 v.AsDouble();
        case Rep::kF64:
          if (v.is_string()) return false;
          return a.col_->f64_data()[a.row_] == v.AsDouble();
        case Rep::kBoxed:
          return a.col_->boxed_at(a.row_) == v;
      }
      return false;
    }
    friend bool operator==(const Value& v, const RowRef& a) { return a == v; }

   private:
    const ValueColumn* col_;
    std::size_t row_;
  };

  ValueColumn() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Rep rep() const { return rep_; }

  RowRef operator[](std::size_t row) const { return RowRef(this, row); }

  /// Drops all rows but keeps every buffer's capacity (the scratch pools
  /// in BatchEvalScratch recycle columns across batches).
  void clear() {
    i64_.clear();
    f64_.clear();
    boxed_.clear();
    size_ = 0;
    rep_ = Rep::kI64;
  }

  void reserve(std::size_t n) {
    switch (rep_) {
      case Rep::kI64: i64_.reserve(n); break;
      case Rep::kF64: f64_.reserve(n); break;
      case Rep::kBoxed: boxed_.reserve(n); break;
    }
  }

  /// Appends one Value, preserving its exact type. A type that disagrees
  /// with the current representation boxes the whole column.
  void AppendValue(const Value& v) {
    switch (rep_) {
      case Rep::kI64:
        if (v.is_int()) {
          i64_.push_back(v.AsInt());
          ++size_;
          return;
        }
        if (v.is_double() && size_ == 0) {
          rep_ = Rep::kF64;
          f64_.push_back(v.AsDouble());
          ++size_;
          return;
        }
        break;
      case Rep::kF64:
        if (v.is_double()) {
          f64_.push_back(v.AsDouble());
          ++size_;
          return;
        }
        break;
      case Rep::kBoxed:
        boxed_.push_back(v);
        ++size_;
        return;
    }
    Box();
    boxed_.push_back(v);
    ++size_;
  }
  void push_back(const Value& v) { AppendValue(v); }

  // --- Typed bulk access for the SIMD kernels ------------------------------

  /// Appends `n` uninitialized int64 rows and returns a pointer to the
  /// first; the column must be empty or already kI64.
  std::int64_t* AppendI64(std::size_t n) {
    FWDECAY_CHECK_MSG(rep_ == Rep::kI64, "AppendI64 on non-i64 column");
    const std::size_t at = size_;
    i64_.resize(at + n);
    size_ += n;
    return i64_.data() + at;
  }

  /// Appends `n` uninitialized double rows; the column must be empty or
  /// already kF64 (an empty kI64 column switches representation).
  double* AppendF64(std::size_t n) {
    if (rep_ == Rep::kI64 && size_ == 0) rep_ = Rep::kF64;
    FWDECAY_CHECK_MSG(rep_ == Rep::kF64, "AppendF64 on non-f64 column");
    const std::size_t at = size_;
    f64_.resize(at + n);
    size_ += n;
    return f64_.data() + at;
  }

  const std::int64_t* i64_data() const { return i64_.data(); }
  const double* f64_data() const { return f64_.data(); }
  const Value& boxed_at(std::size_t row) const { return boxed_[row]; }

 private:
  // Rebox every row into boxed_ (cold: only mixed-type columns hit it).
  void Box() {
    boxed_.reserve(size_ > boxed_.capacity() ? size_ : boxed_.capacity());
    if (rep_ == Rep::kI64) {
      for (std::size_t i = 0; i < size_; ++i) {
        boxed_.emplace_back(i64_[i]);
      }
      i64_.clear();
    } else {
      for (std::size_t i = 0; i < size_; ++i) {
        boxed_.emplace_back(f64_[i]);
      }
      f64_.clear();
    }
    rep_ = Rep::kBoxed;
  }

  Rep rep_ = Rep::kI64;
  std::size_t size_ = 0;
  std::vector<std::int64_t> i64_;
  std::vector<double> f64_;
  std::vector<Value> boxed_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_COLUMN_H_
