#include "dsms/tumbling.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace fwdecay::dsms {

TumblingRunner::TumblingRunner(const CompiledQuery* plan,
                               double bucket_seconds, EmitFn emit,
                               double slack_seconds)
    : plan_(plan),
      bucket_seconds_(bucket_seconds),
      slack_seconds_(slack_seconds),
      emit_(std::move(emit)) {
  FWDECAY_CHECK(plan != nullptr);
  FWDECAY_CHECK(bucket_seconds > 0.0);
  FWDECAY_CHECK(slack_seconds >= 0.0);
}

void TumblingRunner::Consume(const Packet& p) {
  const auto bucket =
      static_cast<std::int64_t>(std::floor(p.time / bucket_seconds_));
  if (bucket < next_unemitted_) {
    ++late_drops_;
    return;
  }
  auto it = open_.find(bucket);
  if (it == open_.end()) {
    it = open_.emplace(bucket, AcquireExecution()).first;
  }
  it->second->Consume(p);
  if (p.time > watermark_) {
    watermark_ = p.time;
    EmitReady();
  }
}

void TumblingRunner::EmitReady() {
  while (!open_.empty()) {
    const std::int64_t bucket = open_.begin()->first;
    const double bucket_end =
        (static_cast<double>(bucket) + 1.0) * bucket_seconds_;
    if (watermark_ < bucket_end + slack_seconds_) break;
    emit_(bucket, open_.begin()->second->Finish());
    ReleaseExecution(std::move(open_.begin()->second));
    open_.erase(open_.begin());
    next_unemitted_ = bucket + 1;
  }
}

void TumblingRunner::Flush() {
  while (!open_.empty()) {
    const std::int64_t bucket = open_.begin()->first;
    emit_(bucket, open_.begin()->second->Finish());
    ReleaseExecution(std::move(open_.begin()->second));
    open_.erase(open_.begin());
    next_unemitted_ = bucket + 1;
  }
}

std::unique_ptr<QueryExecution> TumblingRunner::AcquireExecution() {
  if (pool_.empty()) return plan_->NewExecution();
  std::unique_ptr<QueryExecution> exec = std::move(pool_.back());
  pool_.pop_back();
  return exec;
}

void TumblingRunner::ReleaseExecution(std::unique_ptr<QueryExecution> exec) {
  // Reset keeps the flat-table slot arrays, arena-backed group shells
  // and batch scratch warm, so the next bucket's execution starts with
  // every capacity this one grew (DESIGN.md §13.3).
  exec->Reset();
  pool_.push_back(std::move(exec));
}

}  // namespace fwdecay::dsms
