#include "dsms/engine.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <span>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>  // sched_setaffinity (worker core pinning)
#endif

#include "core/decay.h"
#include "util/arena.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/fault_fs.h"
#include "util/hash.h"
#include "util/simd.h"
#include "util/spsc_ring.h"

namespace fwdecay::dsms {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Seed of the group-key hash. util/simd.h's GroupHashI64 kernel bakes
// the same seed/combine algebra into its folded constants, so changing
// either side alone breaks the batched/per-tuple equivalence
// (simd_test covers the pairing).
constexpr std::uint64_t kGroupHashSeed = 0x12345678abcdef01ULL;

std::uint64_t HashKey(const std::vector<Value>& key) {
  std::uint64_t h = kGroupHashSeed;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

// Group hash per selected row — HashKey replicated over the dense key
// columns. The ubiquitous single-int64-key shape (srcIP, time/60, a
// port) takes the vectorized kernel, which is bit-identical to
// HashCombine(seed, HashU64(k, 1)); everything else (doubles, strings,
// composite keys) walks the columns per row.
void ComputeGroupHashes(const std::vector<ValueColumn>& key_cols,
                        std::size_t num_groups, std::size_t n,
                        std::uint64_t* out) {
  if (num_groups == 1 && key_cols[0].rep() == ValueColumn::Rep::kI64) {
    simd::GroupHashI64(key_cols[0].i64_data(), n, kGroupHashSeed, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t h = kGroupHashSeed;
    for (std::size_t g = 0; g < num_groups; ++g) {
      h = HashCombine(h, key_cols[g][i].Hash());
    }
    out[i] = h;
  }
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

// Total order on group keys (mixed types ordered int < double < string
// per slot). Shared by Finish()'s output sort and the shedding scan's
// tie-break so both are deterministic regardless of hash-map iteration
// order.
bool KeyLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Value& x = a[i];
    const Value& y = b[i];
    if (!(x == y)) {
      if (x.is_string() != y.is_string()) return y.is_string();
      return Compare(x, y) < 0;
    }
  }
  return a.size() < b.size();
}

// Binds an expression for post-aggregation evaluation: aggregate calls
// become kAggRef slots (appending their name and per-tuple argument
// expressions to the plan), and subtrees matching a GROUP BY expression
// (textually) or a GROUP BY alias become kGroupRef. Any raw column that
// survives is an error — it is neither aggregated nor grouped.
bool BindPostExpr(
    std::unique_ptr<Expr>& expr, const std::vector<std::string>& agg_names,
    const std::vector<std::string>& group_text,
    const std::vector<std::pair<std::string, int>>& alias_to_pos,
    std::vector<std::string>* slot_names,
    std::vector<std::vector<std::unique_ptr<Expr>>>* slot_args,
    std::string* error) {
  if (expr->kind == Expr::Kind::kCall) {
    const std::string name = Lower(expr->name);
    if (std::find(agg_names.begin(), agg_names.end(), name) !=
        agg_names.end()) {
      const int slot = static_cast<int>(slot_names->size());
      slot_names->push_back(name);
      slot_args->push_back(std::move(expr->args));
      expr = Expr::AggRef(slot);
      return true;
    }
  }
  if (expr->kind == Expr::Kind::kColumn) {
    const std::string col = Lower(expr->name);
    for (const auto& [alias, pos] : alias_to_pos) {
      if (alias == col) {
        expr = Expr::GroupRef(pos);
        return true;
      }
    }
  }
  const std::string text = expr->ToString();
  for (std::size_t i = 0; i < group_text.size(); ++i) {
    if (group_text[i] == text) {
      expr = Expr::GroupRef(static_cast<int>(i));
      return true;
    }
  }
  if (expr->kind == Expr::Kind::kColumn) {
    *error = "column '" + expr->name +
             "' is used outside an aggregate and does not match a GROUP BY "
             "expression or alias";
    return false;
  }
  for (auto& arg : expr->args) {
    if (!BindPostExpr(arg, agg_names, group_text, alias_to_pos, slot_names,
                      slot_args, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Self-instrumentation (DESIGN.md §9)
// ---------------------------------------------------------------------------

namespace {

// Registry handles for the engine-wide metric families, resolved once.
// Per-shard executions rebind their counter handles to the labelled
// fwdecay_shard_* families via QueryExecution::UseShardMetrics(); the
// decayed tuple rate and the ns-per-batch reservoir stay shared (both
// are internally locked, and a process-wide view is what an operator
// wants from them).
struct EngineMetrics {
  metrics::Counter* packets;
  metrics::Counter* batches;
  metrics::Counter* tuples;
  metrics::Counter* evictions;
  metrics::Counter* groups_shed;
  metrics::Counter* tuples_shed;
  metrics::Gauge* groups;
  metrics::DecayedRate* tuple_rate;
  metrics::LatencyReservoir* batch_ns;
  metrics::Counter* plans_compiled;
  metrics::LatencyReservoir* compile_ns;
  metrics::Counter* checkpoints;
  metrics::Counter* checkpoint_bytes;
  metrics::LatencyReservoir* checkpoint_ns;
  metrics::Counter* restores;
  metrics::LatencyReservoir* restore_ns;

  static const EngineMetrics& Get() {
    static const EngineMetrics m = Create();
    return m;
  }

 private:
  static EngineMetrics Create() {
    auto& reg = metrics::MetricsRegistry::Instance();
    EngineMetrics m{};
    m.packets = reg.GetCounter("fwdecay_engine_packets_total",
                               "Packets offered to Consume() (pre-filter).");
    m.batches = reg.GetCounter("fwdecay_engine_batches_total",
                               "Batches processed (a Packet is a 1-batch).");
    m.tuples = reg.GetCounter("fwdecay_engine_tuples_total",
                              "Tuples that passed the filter and were "
                              "aggregated.");
    m.evictions = reg.GetCounter("fwdecay_engine_low_evictions_total",
                                 "Low-level slot evictions to the high "
                                 "table (two-level mode).");
    m.groups_shed = reg.GetCounter("fwdecay_engine_groups_shed_total",
                                   "Groups evicted by overload shedding.");
    m.tuples_shed = reg.GetCounter("fwdecay_engine_tuples_shed_total",
                                   "Tuples lost inside shed groups.");
    m.groups = reg.GetGauge("fwdecay_engine_groups",
                            "Live groups (low + high level) at the last "
                            "metrics flush.");
    m.tuple_rate = reg.GetDecayedRate(
        "fwdecay_engine_tuple_rate",
        "Forward-decayed tuple ingest rate (events/s; alpha=0.1).",
        /*alpha=*/0.1);
    m.batch_ns = reg.GetReservoir(
        "fwdecay_engine_batch_ns",
        "Consume() wall time per batch, ns (decayed reservoir; sampled "
        "1-in-64 batches).",
        /*k=*/256, /*alpha=*/0.015);
    m.plans_compiled = reg.GetCounter("fwdecay_plans_compiled_total",
                                      "GSQL plans successfully compiled.");
    m.compile_ns = reg.GetReservoir(
        "fwdecay_plan_compile_ns",
        "Parse-to-plan compile time, ns (decayed reservoir).",
        /*k=*/64, /*alpha=*/0.015);
    m.checkpoints = reg.GetCounter("fwdecay_checkpoint_total",
                                   "Snapshots successfully written.");
    m.checkpoint_bytes = reg.GetCounter(
        "fwdecay_checkpoint_bytes_total",
        "Total snapshot bytes handed to the atomic-write path.");
    m.checkpoint_ns = reg.GetReservoir(
        "fwdecay_checkpoint_ns",
        "Checkpoint() wall time incl. fsync+rename, ns (decayed "
        "reservoir).",
        /*k=*/64, /*alpha=*/0.015);
    m.restores = reg.GetCounter("fwdecay_restore_total",
                                "Snapshots successfully restored.");
    m.restore_ns = reg.GetReservoir(
        "fwdecay_restore_ns",
        "Restore() wall time (read + validate + rebuild), ns (decayed "
        "reservoir).",
        /*k=*/64, /*alpha=*/0.015);
    return m;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

std::unique_ptr<CompiledQuery> CompiledQuery::Compile(const std::string& gsql,
                                                      std::string* error) {
  return Compile(gsql, error, Options{});
}

std::unique_ptr<CompiledQuery> CompiledQuery::Compile(const std::string& gsql,
                                                      std::string* error,
                                                      Options options) {
  ParseResult parsed = ParseQuery(gsql);
  if (!parsed.ok()) {
    *error = parsed.error;
    return nullptr;
  }
  return CompileParsed(std::move(*parsed.query), error, options);
}

std::unique_ptr<CompiledQuery> CompiledQuery::CompileParsed(Query query,
                                                            std::string* error,
                                                            Options options) {
  // Compilation is cold, so it is timed unconditionally (no sampling).
  metrics::ScopedTimerSample compile_timer(
      EngineMetrics::Get().compile_ns,
      metrics::MetricsRegistry::Instance().NowSeconds());
  auto plan = std::unique_ptr<CompiledQuery>(new CompiledQuery());
  plan->options_ = options;

  // FROM clause: TCP and UDP are protocol-filtered views of the packet
  // stream; PKT (or anything else) is the raw stream.
  const std::string from = Lower(query.from);
  if (from == "tcp") {
    plan->protocol_filter_ = kProtoTcp;
  } else if (from == "udp") {
    plan->protocol_filter_ = kProtoUdp;
  } else {
    plan->protocol_filter_ = 0;
  }
  plan->where_ = std::move(query.where);

  // Group-by expressions, with alias -> position mapping.
  std::vector<std::pair<std::string, int>> alias_to_pos;
  std::vector<std::string> group_text;
  for (std::size_t i = 0; i < query.group_by.size(); ++i) {
    SelectItem& item = query.group_by[i];
    group_text.push_back(item.expr->ToString());
    if (!item.alias.empty()) {
      alias_to_pos.emplace_back(item.alias, static_cast<int>(i));
    }
    plan->group_exprs_.push_back(std::move(item.expr));
  }

  const std::vector<std::string> agg_names = AggRegistry::Instance().Names();

  for (SelectItem& item : query.select) {
    OutputItem out;
    out.source_text = item.expr->ToString();
    out.column_name = item.alias.empty() ? out.source_text : item.alias;
    if (!BindPostExpr(item.expr, agg_names, group_text, alias_to_pos,
                      &plan->agg_names_, &plan->agg_args_, error)) {
      return nullptr;
    }
    out.post = std::move(item.expr);
    plan->outputs_.push_back(std::move(out));
  }

  // HAVING: a post-aggregation predicate over group columns + aggregates.
  if (query.having != nullptr) {
    if (!BindPostExpr(query.having, agg_names, group_text, alias_to_pos,
                      &plan->agg_names_, &plan->agg_args_, error)) {
      return nullptr;
    }
    plan->having_ = std::move(query.having);
  }

  // ORDER BY: resolve each entry to an output column — by 1-based
  // position, by alias/column name, or by expression text.
  for (OrderItem& item : query.order_by) {
    std::size_t col = plan->outputs_.size();
    if (item.expr->kind == Expr::Kind::kLiteral &&
        item.expr->literal.is_int()) {
      const std::int64_t pos = item.expr->literal.AsInt();
      if (pos < 1 ||
          pos > static_cast<std::int64_t>(plan->outputs_.size())) {
        *error = "ORDER BY position out of range";
        return nullptr;
      }
      col = static_cast<std::size_t>(pos - 1);
    } else {
      const std::string text = item.expr->ToString();
      for (std::size_t i = 0; i < plan->outputs_.size(); ++i) {
        if (plan->outputs_[i].column_name == text ||
            plan->outputs_[i].source_text == text) {
          col = i;
          break;
        }
      }
      if (col == plan->outputs_.size()) {
        *error = "ORDER BY item '" + text +
                 "' does not name an output column";
        return nullptr;
      }
    }
    plan->order_by_.emplace_back(col, item.descending);
  }
  plan->limit_ = query.limit;

  if (plan->options_.two_level) {
    FWDECAY_CHECK_MSG(plan->options_.low_level_slots >= 2,
                      "two-level mode needs at least 2 low-level slots");
  }
  EngineMetrics::Get().plans_compiled->Increment();
  return plan;
}

std::unique_ptr<QueryExecution> CompiledQuery::NewExecution() const {
  return std::make_unique<QueryExecution>(this);
}

std::uint64_t CompiledQuery::Fingerprint() const {
  std::uint64_t h = HashString("fwdsnap-plan", 7);
  h = HashCombine(h, options_.two_level ? 1 : 0);
  h = HashCombine(h, options_.low_level_slots);
  h = HashCombine(h, protocol_filter_);
  h = HashCombine(h, HashString(where_ ? where_->ToString() : ""));
  for (const auto& g : group_exprs_) {
    h = HashCombine(h, HashString(g->ToString()));
  }
  for (std::size_t slot = 0; slot < agg_names_.size(); ++slot) {
    h = HashCombine(h, HashString(agg_names_[slot]));
    for (const auto& arg : agg_args_[slot]) {
      h = HashCombine(h, HashString(arg->ToString()));
    }
  }
  for (const auto& out : outputs_) {
    h = HashCombine(h, HashString(out.post->ToString()));
    h = HashCombine(h, HashString(out.column_name));
  }
  h = HashCombine(h, HashString(having_ ? having_->ToString() : ""));
  for (const auto& [col, desc] : order_by_) {
    h = HashCombine(h, col);
    h = HashCombine(h, desc ? 1 : 0);
  }
  h = HashCombine(h, limit_.has_value()
                         ? static_cast<std::uint64_t>(*limit_) + 1
                         : 0);
  return h;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

struct QueryExecution::Group {
  std::vector<Value> key;
  std::vector<std::unique_ptr<AggState>> aggs;
  // Forward-decayed weight Σ g(t_i - L) and tuple count, maintained for
  // the overload-shedding eviction rule (cheap: one add per update).
  double weight = 0.0;
  std::uint64_t tuples = 0;
};

struct QueryExecution::LowSlot {
  bool occupied = false;
  std::uint64_t hash = 0;
  Group group;
};

// Open-addressing flat high table (DESIGN.md §13.1). Two parallel slot
// arrays — cached key hash and group pointer (nullptr = empty) — probed
// linearly under a power-of-two mask, so a lookup touches one cache
// line of hashes before it ever dereferences a group. Group shells live
// out-of-line in a bump arena and are recycled through a free list:
// pointers stay stable across rehash (only the slot arrays move), and a
// shell released by shedding or a window Reset() keeps its key/agg
// vector capacities for the next admission. Tombstone-free: removal
// backward-shifts the probe chain, so layout is a pure function of the
// insertion sequence — but no observable order ever reads the layout
// (Finish/MergeFrom/CheckpointBytes all sort by KeyLess, and the shed
// victim is a deterministic (weight, KeyLess) minimum).
struct QueryExecution::HighTable {
  std::vector<std::uint64_t> hashes;  // slot -> cached key hash
  std::vector<Group*> slots;          // slot -> shell, nullptr = empty
  std::size_t mask = 0;               // capacity - 1
  std::size_t size = 0;               // occupied slots

  util::Arena arena;                  // owns every shell's storage
  std::vector<Group*> free_shells;    // released, capacity-retaining
  std::vector<Group*> all_shells;     // every shell ever built (dtors)

  ~HighTable() {
    // Arena memory is freed wholesale; the shells' interior vectors are
    // ordinary heap objects and need their destructors.
    for (Group* g : all_shells) g->~Group();
  }

  Group* Find(std::uint64_t hash, const std::vector<Value>& key) const {
    if (slots.empty()) return nullptr;
    std::size_t s = hash & mask;
    while (slots[s] != nullptr) {
      if (hashes[s] == hash && KeysEqual(slots[s]->key, key)) {
        return slots[s];
      }
      s = (s + 1) & mask;
    }
    return nullptr;
  }

  // Inserts a shell whose key is already in place. The caller has
  // established absence via Find (restore paths may insert duplicates
  // from hostile snapshots; CheckInvariants rejects them afterwards,
  // exactly as the chained table did).
  void Insert(std::uint64_t hash, Group* g) {
    if (slots.empty() || (size + 1) * 8 > (mask + 1) * 7) Grow();
    InsertNoGrow(hash, g);
    ++size;
  }

  // Backward-shift deletion: close the hole by sliding back every chain
  // member that probed across it, so no tombstones accumulate and the
  // probe invariant (home..slot unbroken) is restored locally.
  void EraseSlot(std::size_t slot) {
    slots[slot] = nullptr;
    std::size_t hole = slot;
    std::size_t next = (slot + 1) & mask;
    while (slots[next] != nullptr) {
      const std::size_t home = hashes[next] & mask;
      if (((next - home) & mask) >= ((next - hole) & mask)) {
        slots[hole] = slots[next];
        hashes[hole] = hashes[next];
        slots[next] = nullptr;
        hole = next;
      }
      next = (next + 1) & mask;
    }
    --size;
  }

  Group* AcquireShell() {
    if (!free_shells.empty()) {
      Group* g = free_shells.back();
      free_shells.pop_back();
      return g;
    }
    // fwdecay: hotpath-cold(shell construction: once per peak live group, arena-backed)
    Group* g = arena.New<Group>();
    // fwdecay: hotpath-cold(destructor registry grows once per constructed shell)
    all_shells.push_back(g);
    return g;
  }

  // Empties a shell back into the pool. Vector capacities (key slots,
  // agg pointers) survive, so readmission after shedding or a window
  // turnover allocates nothing.
  void ReleaseShell(Group* g) {
    g->key.clear();
    g->aggs.clear();
    g->weight = 0.0;
    g->tuples = 0;
    // fwdecay: hotpath-cold(pool vector growth bounded by peak live shells)
    free_shells.push_back(g);
  }

  // Releases every group and empties the table; slot arrays, shells and
  // arena chunks are all retained for the next window.
  void Clear() {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s] != nullptr) {
        ReleaseShell(slots[s]);
        slots[s] = nullptr;
      }
    }
    size = 0;
  }

 private:
  void InsertNoGrow(std::uint64_t hash, Group* g) {
    std::size_t s = hash & mask;
    while (slots[s] != nullptr) s = (s + 1) & mask;
    slots[s] = g;
    hashes[s] = hash;
  }

  void Grow() {
    const std::size_t new_cap = slots.empty() ? 16 : (mask + 1) * 2;
    std::vector<Group*> old_slots = std::move(slots);
    std::vector<std::uint64_t> old_hashes = std::move(hashes);
    // fwdecay: hotpath-cold(table growth: amortized over 7/8ths of the new capacity)
    slots.assign(new_cap, nullptr);
    hashes.assign(new_cap, 0);
    mask = new_cap - 1;
    // Reinsert in ascending old-slot order: the rehashed layout is a
    // deterministic function of the old layout.
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if (old_slots[s] != nullptr) InsertNoGrow(old_hashes[s], old_slots[s]);
    }
  }
};

QueryExecution::QueryExecution(const CompiledQuery* plan)
    : plan_(plan), high_(std::make_unique<HighTable>()) {
  if (plan_->options_.two_level) {
    low_table_.resize(plan_->options_.low_level_slots);
    const std::size_t slots = low_table_.size();
    if ((slots & (slots - 1)) == 0) low_mask_ = slots - 1;
  }
  const EngineMetrics& em = EngineMetrics::Get();
  metrics_.packets = em.packets;
  metrics_.batches = em.batches;
  metrics_.tuples = em.tuples;
  metrics_.evictions = em.evictions;
  metrics_.groups_shed = em.groups_shed;
  metrics_.tuples_shed = em.tuples_shed;
  metrics_.groups = em.groups;
  metrics_.tuple_rate = em.tuple_rate;
  metrics_.batch_ns = em.batch_ns;
}

QueryExecution::~QueryExecution() {
  // Short-lived executions may never hit a periodic flush; publish the
  // tail deltas so process-wide counters stay exact.
  FlushMetrics();
}

void QueryExecution::FlushMetrics() {
  if (!FWDECAY_METRICS_ENABLED) return;  // constant-folds away when OFF
  const std::uint64_t d_packets = packets_consumed_ - flushed_packets_;
  const std::uint64_t d_batches = metrics_batch_seq_ - flushed_batches_;
  const std::uint64_t d_tuples = tuples_aggregated_ - flushed_tuples_;
  const std::uint64_t d_evict = low_level_evictions_ - flushed_evictions_;
  const std::uint64_t d_gshed = groups_shed_ - flushed_groups_shed_;
  const std::uint64_t d_tshed = tuples_shed_ - flushed_tuples_shed_;
  flushed_packets_ = packets_consumed_;
  flushed_batches_ = metrics_batch_seq_;
  flushed_tuples_ = tuples_aggregated_;
  flushed_evictions_ = low_level_evictions_;
  flushed_groups_shed_ = groups_shed_;
  flushed_tuples_shed_ = tuples_shed_;
  if (d_packets > 0) metrics_.packets->Increment(d_packets);
  if (d_batches > 0) metrics_.batches->Increment(d_batches);
  if (d_tuples > 0) metrics_.tuples->Increment(d_tuples);
  if (d_evict > 0) metrics_.evictions->Increment(d_evict);
  if (d_gshed > 0) metrics_.groups_shed->Increment(d_gshed);
  if (d_tshed > 0) metrics_.tuples_shed->Increment(d_tshed);
  metrics_.groups->Set(static_cast<double>(GroupCount()));
  if (d_tuples > 0) {
    metrics_.tuple_rate->Mark(metrics::MetricsRegistry::Instance().NowSeconds(),
                              static_cast<double>(d_tuples));
  }
}

void QueryExecution::UseShardMetrics(std::size_t shard_index) {
  if (!FWDECAY_METRICS_ENABLED) return;
  FlushMetrics();  // anything recorded so far belongs to the global family
  const std::string label = "shard=\"" + std::to_string(shard_index) + "\"";
  auto& reg = metrics::MetricsRegistry::Instance();
  metrics_.packets =
      reg.GetCounter("fwdecay_shard_packets_total",
                     "Post-filter rows routed to this shard.", label);
  metrics_.batches =
      reg.GetCounter("fwdecay_shard_batches_total",
                     "Routed batch fragments applied on this shard.", label);
  metrics_.tuples = reg.GetCounter("fwdecay_shard_tuples_total",
                                   "Tuples aggregated on this shard.", label);
  metrics_.evictions =
      reg.GetCounter("fwdecay_shard_low_evictions_total",
                     "Low-level evictions on this shard.", label);
  metrics_.groups_shed =
      reg.GetCounter("fwdecay_shard_groups_shed_total",
                     "Groups shed by this shard's overload policy.", label);
  metrics_.tuples_shed =
      reg.GetCounter("fwdecay_shard_tuples_shed_total",
                     "Tuples lost inside groups shed by this shard.", label);
  metrics_.groups = reg.GetGauge("fwdecay_shard_groups",
                                 "Live groups held by this shard.", label);
  // tuple_rate / batch_ns stay bound to the shared engine-wide families.
}

namespace {

// Fills a (possibly recycled) agg-state vector with fresh states, one
// per plan slot, reusing the vector's capacity.
void FillAggStates(const std::vector<std::string>& names,
                   std::vector<std::unique_ptr<AggState>>* states) {
  states->clear();
  states->reserve(names.size());
  for (const std::string& name : names) {
    states->push_back(AggRegistry::Instance().Create(name));
  }
}

}  // namespace

QueryExecution::Group* QueryExecution::FindOrCreateHighGroup(
    std::uint64_t hash, const std::vector<Value>& key) {
  if (Group* g = high_->Find(hash, key)) return g;
  // A new group is about to be admitted; under a bounded-ingest policy
  // make room by shedding the lowest-weight incumbent instead of growing
  // without bound. The incoming group represents the newest tuples —
  // under forward decay the ones with the largest static weights — so
  // admitting it over the minimum-weight group is the principled choice.
  if (policy_.max_groups > 0) {
    while (high_group_count_ >= policy_.max_groups) ShedLowestWeightGroup();
  }
  Group* g = high_->AcquireShell();
  g->key = key;  // copy into the shell's retained capacity
  // fwdecay: hotpath-cold(new-group admission: states allocated once per group, not per row)
  FillAggStates(plan_->agg_names_, &g->aggs);
  high_->Insert(hash, g);
  ++high_group_count_;
  return g;
}

double QueryExecution::ForwardWeight(double ts) const {
  if (policy_.decay_alpha == 0.0) return 1.0;
  // Routed through the sanctioned g (scripts/analyze.py rule exp-pow):
  // core/decay.h owns the weight exponential and its rescaling algebra.
  return ExponentialG(policy_.decay_alpha).G(ts - policy_.landmark);
}

void QueryExecution::ShedLowestWeightGroup() {
  // Deterministic min scan: weight first, group key as tie-break, so the
  // shed victim does not depend on table layout (recovery replay must
  // reproduce the uninterrupted run exactly; the flat table's slot order
  // never influences which group loses the strict-minimum scan).
  std::size_t victim_slot = 0;
  const Group* victim = nullptr;
  for (std::size_t s = 0; s < high_->slots.size(); ++s) {
    const Group* g = high_->slots[s];
    if (g == nullptr) continue;
    if (victim == nullptr || g->weight < victim->weight ||
        (g->weight == victim->weight && KeyLess(g->key, victim->key))) {
      victim = g;
      victim_slot = s;
    }
  }
  FWDECAY_CHECK_MSG(victim != nullptr, "shedding from an empty group table");
  ++groups_shed_;
  tuples_shed_ += victim->tuples;
  high_->ReleaseShell(high_->slots[victim_slot]);
  high_->EraseSlot(victim_slot);
  --high_group_count_;
}

void QueryExecution::UpdateGroup(Group& group, const PacketBatch& batch,
                                 std::size_t run_begin, std::size_t run_len) {
  // Weights first, per row in stream order, then the aggregates — the
  // exact side-effect order of the old per-tuple loop, just regrouped:
  // per-slot agg states are independent, so interleaving slots per row
  // (old) and rows per slot (here) yield identical per-state sequences.
  const double* times = batch.time();
  for (std::size_t r = run_begin; r < run_begin + run_len; ++r) {
    group.weight += ForwardWeight(times[sel_[r]]);
  }
  group.tuples += run_len;
  const std::span<const std::uint32_t> rows(row_index_.data() + run_begin,
                                            run_len);
  for (std::size_t slot = 0; slot < plan_->agg_names_.size(); ++slot) {
    group.aggs[slot]->UpdateBatch(
        std::span<const ValueColumn>(arg_cols_[slot]), rows);
  }
}

void QueryExecution::EvictToHigh(LowSlot& slot) {
  Group* target = FindOrCreateHighGroup(slot.hash, slot.group.key);
  for (std::size_t i = 0; i < target->aggs.size(); ++i) {
    // fwdecay: hotpath-cold(amortized-rare eviction; Merge runs once per evicted group, not per row)
    target->aggs[i]->Merge(*slot.group.aggs[i]);
  }
  target->weight += slot.group.weight;
  target->tuples += slot.group.tuples;
  slot.occupied = false;
  --low_occupied_;
  // The slot's key/agg vectors keep their capacity for the next tenant.
  slot.group.key.clear();
  slot.group.aggs.clear();
  slot.group.weight = 0.0;
  slot.group.tuples = 0;
  ++low_level_evictions_;
}

void QueryExecution::Consume(const Packet& p) {
  single_.Clear();
  single_.Append(p);
  Consume(single_);
}

void QueryExecution::Consume(const PacketBatch& batch) {
  // 1-in-kMetricsSamplePeriod batches get a wall-clock sample into the
  // decayed ns-per-batch reservoir; a null handle means the clock is
  // never read. The periodic FlushMetrics() below publishes counter
  // deltas. Both compile to nothing under FWDECAY_METRICS=OFF.
  metrics::LatencyReservoir* sampled_reservoir =
      (FWDECAY_METRICS_ENABLED &&
       metrics_batch_seq_ % kMetricsSamplePeriod == 0)
          ? metrics_.batch_ns
          : nullptr;
  metrics::ScopedTimerSample batch_timer(
      sampled_reservoir,
      sampled_reservoir != nullptr
          // fwdecay: hotpath-cold(1-in-64 sampled batch timer reads the clock)
          ? metrics::MetricsRegistry::Instance().NowSeconds()
          : 0.0);
  if (FWDECAY_METRICS_ENABLED &&
      ++metrics_batch_seq_ % kMetricsFlushPeriod == 0) {
    // fwdecay: hotpath-cold(1-in-64 periodic metrics flush)
    FlushMetrics();
  }

  const std::size_t n_in = batch.size();
  packets_consumed_ += n_in;
  if (n_in == 0) return;

  // Selection vector over the batch: start from the protocol filter
  // (vectorized byte compare over the column), then narrow by WHERE.
  sel_.resize(n_in);
  std::size_t n = 0;
  if (plan_->protocol_filter_ != 0) {
    n = simd::FilterByteEq(batch.protocol(), plan_->protocol_filter_, n_in,
                           sel_.data());
  } else {
    for (std::size_t i = 0; i < n_in; ++i) {
      sel_[i] = static_cast<std::uint32_t>(i);
    }
    n = n_in;
  }
  if (plan_->where_ != nullptr && n > 0) {
    n = EvalPredicateBatch(*plan_->where_, batch, sel_.data(), n,
                           &batch_scratch_);
  }
  AggregateSelection(batch, n);
}

void QueryExecution::ConsumeFiltered(const PacketBatch& batch,
                                     const std::uint32_t* rows,
                                     std::size_t n) {
  // Same sampling/flush cadence as Consume(batch) — this is the
  // per-shard hot path (caller holds the shard lock).
  metrics::LatencyReservoir* sampled_reservoir =
      (FWDECAY_METRICS_ENABLED &&
       metrics_batch_seq_ % kMetricsSamplePeriod == 0)
          ? metrics_.batch_ns
          : nullptr;
  metrics::ScopedTimerSample batch_timer(
      sampled_reservoir,
      sampled_reservoir != nullptr
          // fwdecay: hotpath-cold(1-in-64 sampled batch timer reads the clock)
          ? metrics::MetricsRegistry::Instance().NowSeconds()
          : 0.0);
  if (FWDECAY_METRICS_ENABLED &&
      ++metrics_batch_seq_ % kMetricsFlushPeriod == 0) {
    // fwdecay: hotpath-cold(1-in-64 periodic metrics flush)
    FlushMetrics();
  }

  // The router already applied protocol + WHERE; count only the rows
  // this shard owns so tuples_aggregated_ <= packets_consumed_ holds
  // per shard.
  packets_consumed_ += n;
  sel_.assign(rows, rows + n);
  AggregateSelection(batch, n);
}

void QueryExecution::AggregateSelection(const PacketBatch& batch,
                                        std::size_t n) {
  if (n == 0) return;
  tuples_aggregated_ += n;
  const std::size_t num_groups = plan_->group_exprs_.size();
  const std::size_t num_slots = plan_->agg_names_.size();

  // Evaluate group-key and aggregate-argument columns once per batch,
  // dense over the selection (column i = row sel_[i]).
  key_cols_.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    EvalExprBatch(*plan_->group_exprs_[g], batch, sel_.data(), n,
                  &batch_scratch_, &key_cols_[g]);
  }
  arg_cols_.resize(num_slots);
  for (std::size_t slot = 0; slot < num_slots; ++slot) {
    const auto& args = plan_->agg_args_[slot];
    arg_cols_[slot].resize(args.size());
    for (std::size_t a = 0; a < args.size(); ++a) {
      EvalExprBatch(*args[a], batch, sel_.data(), n, &batch_scratch_,
                    &arg_cols_[slot][a]);
    }
  }

  // Group hash per selected row (vectorized for a single int64 key).
  hashes_.resize(n);
  ComputeGroupHashes(key_cols_, num_groups, n, hashes_.data());
  row_index_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    row_index_[i] = static_cast<std::uint32_t>(i);
  }

  // Apply runs of consecutive equal-key rows. A run resolves its group
  // once; re-resolving an identical key between the run's rows would be
  // side-effect-free (same slot, no eviction, no shed), so skipping the
  // re-resolution leaves every observable state bit-identical to the
  // per-row loop. Runs never span distinct keys, so eviction and
  // shedding still happen at exactly the per-tuple points.
  //
  // The dominant query shape — a single int64 group key — runs over the
  // column's raw array for both the run scan and the slot-hit compare;
  // the key is materialized into Values only when a slot is (re)filled.
  const std::int64_t* k0 =
      (num_groups == 1 && key_cols_[0].rep() == ValueColumn::Rep::kI64)
          ? key_cols_[0].i64_data()
          : nullptr;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    if (k0 != nullptr) {
      while (j < n && hashes_[j] == hashes_[i] && k0[j] == k0[i]) ++j;
    } else {
      while (j < n && hashes_[j] == hashes_[i]) {
        bool same = true;
        for (std::size_t g = 0; g < num_groups; ++g) {
          if (!(key_cols_[g][j] == key_cols_[g][i])) {
            same = false;
            break;
          }
        }
        if (!same) break;
        ++j;
      }
    }
    const std::uint64_t hash = hashes_[i];

    Group* target = nullptr;
    if (!plan_->options_.two_level) {
      key_scratch_.clear();
      key_scratch_.reserve(num_groups);
      for (std::size_t g = 0; g < num_groups; ++g) {
        key_scratch_.push_back(key_cols_[g][i]);
      }
      target = FindOrCreateHighGroup(hash, key_scratch_);
    } else {
      LowSlot& slot =
          low_table_[low_mask_ != 0 ? (hash & low_mask_)
                                    : (hash % low_table_.size())];
      // Hit test straight against the columns (RowRef == Value mirrors
      // Value == Value), so a hit — the steady state — materializes no
      // Value at all.
      bool hit = slot.occupied && slot.hash == hash;
      if (hit) {
        for (std::size_t g = 0; g < num_groups; ++g) {
          if (!(key_cols_[g][i] == slot.group.key[g])) {
            hit = false;
            break;
          }
        }
      }
      if (!hit) {
        if (slot.occupied) EvictToHigh(slot);
        slot.occupied = true;
        ++low_occupied_;
        slot.hash = hash;
        slot.group.key.clear();  // buffer keeps its capacity
        for (std::size_t g = 0; g < num_groups; ++g) {
          slot.group.key.push_back(key_cols_[g][i]);
        }
        // fwdecay: hotpath-cold(low-slot admission: states allocated once per group, not per row)
        FillAggStates(plan_->agg_names_, &slot.group.aggs);
      }
      target = &slot.group;
    }
    UpdateGroup(*target, batch, i, j - i);
    i = j;
  }
}

void QueryExecution::CheckInvariants() const {
  // High level: every group is slotted under the hash of its key and is
  // reachable from its home slot through an unbroken linear-probe chain
  // (the tombstone-free deletion contract), no key appears twice,
  // aggregate arity matches the plan, and the cached counts are exact.
  // A violation here is precisely the kind of corruption the
  // differential fuzzers cannot see until an affected group is queried —
  // and Restore() of a hostile snapshot must never leave one behind.
  const std::size_t cap = high_->slots.size();
  FWDECAY_CHECK_MSG(cap == 0 || (cap & (cap - 1)) == 0,
                    "flat-table capacity is not a power of two");
  FWDECAY_CHECK_MSG(high_->hashes.size() == cap,
                    "flat-table slot arrays diverged in length");
  std::size_t high_n = 0;
  std::vector<std::pair<std::uint64_t, const Group*>> seen;
  seen.reserve(high_->size);
  for (std::size_t s = 0; s < cap; ++s) {
    const Group* g = high_->slots[s];
    if (g == nullptr) continue;
    ++high_n;
    const std::uint64_t hash = high_->hashes[s];
    FWDECAY_CHECK_MSG(HashKey(g->key) == hash,
                      "group filed under the wrong hash");
    FWDECAY_CHECK_MSG(g->key.size() == plan_->group_exprs_.size(),
                      "group key arity differs from the plan");
    FWDECAY_CHECK_MSG(g->aggs.size() == plan_->agg_names_.size(),
                      "aggregate slot count differs from the plan");
    FWDECAY_CHECK_MSG(g->weight >= 0.0 && !std::isnan(g->weight),
                      "group forward-decay weight is negative or NaN");
    // Probe invariant: no empty slot between the key's home slot and
    // where the group actually sits, or Find() could never reach it.
    for (std::size_t p = hash & high_->mask; p != s;
         p = (p + 1) & high_->mask) {
      FWDECAY_CHECK_MSG(high_->slots[p] != nullptr,
                        "broken probe chain in the flat high table");
    }
    seen.emplace_back(hash, g);
  }
  // Equal keys imply equal hashes, so duplicate keys can only hide
  // inside equal-hash runs.
  std::sort(seen.begin(), seen.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i + 1 < seen.size(); ++i) {
    for (std::size_t j = i + 1;
         j < seen.size() && seen[j].first == seen[i].first; ++j) {
      FWDECAY_CHECK_MSG(!KeysEqual(seen[i].second->key, seen[j].second->key),
                        "duplicate group key in the flat high table");
    }
  }
  FWDECAY_CHECK_MSG(high_n == high_->size,
                    "flat-table occupancy count out of sync");
  FWDECAY_CHECK_MSG(high_n == high_group_count_,
                    "cached high-level group count out of sync");

  // Low level: the table's size is fixed by the plan options, and every
  // occupied slot sits at hash % slots with a key that re-hashes to the
  // stored hash.
  if (plan_->options_.two_level) {
    FWDECAY_CHECK_MSG(low_table_.size() == plan_->options_.low_level_slots,
                      "low-level table was resized after construction");
  } else {
    FWDECAY_CHECK_MSG(low_table_.empty(),
                      "low-level table allocated in one-level mode");
  }
  std::size_t low_n = 0;
  for (std::size_t s = 0; s < low_table_.size(); ++s) {
    const LowSlot& slot = low_table_[s];
    if (!slot.occupied) continue;
    ++low_n;
    FWDECAY_CHECK_MSG(slot.hash % low_table_.size() == s,
                      "low-level slot holds a group mapped elsewhere");
    FWDECAY_CHECK_MSG(HashKey(slot.group.key) == slot.hash,
                      "low-level slot hash diverged from its key");
    FWDECAY_CHECK_MSG(slot.group.key.size() == plan_->group_exprs_.size(),
                      "low-level group key arity differs from the plan");
    FWDECAY_CHECK_MSG(slot.group.aggs.size() == plan_->agg_names_.size(),
                      "low-level aggregate slot count differs from the plan");
    FWDECAY_CHECK_MSG(slot.group.weight >= 0.0 && !std::isnan(slot.group.weight),
                      "low-level group weight is negative or NaN");
  }
  FWDECAY_CHECK_MSG(low_n == low_occupied_,
                    "cached low-level occupancy count out of sync");

  // Counters and the shedding contract.
  FWDECAY_CHECK_MSG(tuples_aggregated_ <= packets_consumed_,
                    "more tuples aggregated than packets consumed");
  if (policy_.max_groups > 0) {
    FWDECAY_CHECK_MSG(high_group_count_ <= policy_.max_groups,
                      "overload policy group bound exceeded");
  }
}

void QueryExecution::FlushLowLevel() {
  for (LowSlot& slot : low_table_) {
    if (slot.occupied) EvictToHigh(slot);
  }
}

void QueryExecution::Reset() {
  // Publish the finished window's tail deltas before the counters
  // rewind; the flush baselines rewind with them so the next window's
  // first flush publishes exact deltas again.
  FlushMetrics();
  for (LowSlot& slot : low_table_) {
    if (!slot.occupied) continue;
    slot.occupied = false;
    slot.group.key.clear();
    slot.group.aggs.clear();
    slot.group.weight = 0.0;
    slot.group.tuples = 0;
  }
  low_occupied_ = 0;
  high_->Clear();
  high_group_count_ = 0;
  packets_consumed_ = 0;
  tuples_aggregated_ = 0;
  low_level_evictions_ = 0;
  groups_shed_ = 0;
  tuples_shed_ = 0;
  metrics_batch_seq_ = 0;
  flushed_packets_ = 0;
  flushed_batches_ = 0;
  flushed_tuples_ = 0;
  flushed_evictions_ = 0;
  flushed_groups_shed_ = 0;
  flushed_tuples_shed_ = 0;
}

void QueryExecution::MergeFrom(QueryExecution& other) {
  // Deterministic key order, so merged state (and any later snapshot)
  // does not depend on the donor's table layout.
  std::vector<Group*> groups;
  groups.reserve(other.high_group_count_);
  for (Group* g : other.high_->slots) {
    if (g != nullptr) groups.push_back(g);
  }
  std::sort(groups.begin(), groups.end(), [](const Group* a, const Group* b) {
    return KeyLess(a->key, b->key);
  });
  for (Group* g : groups) {
    const std::uint64_t hash = HashKey(g->key);
    Group* existing = high_->Find(hash, g->key);
    if (existing == nullptr) {
      // Whole-group move: no aggregate Merge, so even non-mergeable
      // UDAFs survive as long as the donor's keys are disjoint (shard
      // routing guarantees that). The donor shell's contents move into
      // a shell of *this* table's arena; the emptied donor shell goes
      // back to the donor's pool in Clear() below.
      Group* mine = high_->AcquireShell();
      *mine = std::move(*g);
      high_->Insert(hash, mine);
      ++high_group_count_;
    } else {
      for (std::size_t slot = 0; slot < existing->aggs.size(); ++slot) {
        existing->aggs[slot]->Merge(*g->aggs[slot]);
      }
      existing->weight += g->weight;
      existing->tuples += g->tuples;
    }
  }
  other.high_->Clear();
  other.high_group_count_ = 0;
}

ResultSet QueryExecution::Finish() {
  // Flush remaining low-level partial groups.
  FlushLowLevel();
  // Publish the tail counter deltas (including the evictions the flush
  // above just produced) before results are read.
  FlushMetrics();

  ResultSet result;
  for (const auto& out : plan_->outputs_) result.columns.push_back(out.column_name);

  std::vector<Group*> groups;
  groups.reserve(high_group_count_);
  for (Group* g : high_->slots) {
    if (g != nullptr) groups.push_back(g);
  }
  std::sort(groups.begin(), groups.end(), [](const Group* a, const Group* b) {
    return KeyLess(a->key, b->key);
  });

  for (Group* g : groups) {
    std::vector<Value> agg_values;
    agg_values.reserve(g->aggs.size());
    for (const auto& agg : g->aggs) agg_values.push_back(agg->Finalize());
    if (plan_->having_ != nullptr &&
        !EvalPostPredicate(*plan_->having_, agg_values, g->key)) {
      continue;
    }
    std::vector<Value> row;
    row.reserve(plan_->outputs_.size());
    for (const auto& out : plan_->outputs_) {
      row.push_back(EvalPostExpr(*out.post, agg_values, g->key));
    }
    result.rows.push_back(std::move(row));
  }

  // ORDER BY (stable, lexicographic over the listed columns); the rows
  // are already in group-key order, which remains the tiebreaker.
  if (!plan_->order_by_.empty()) {
    std::stable_sort(
        result.rows.begin(), result.rows.end(),
        [this](const std::vector<Value>& a, const std::vector<Value>& b) {
          for (const auto& [col, desc] : plan_->order_by_) {
            const int cmp = Compare(a[col], b[col]);
            if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
          }
          return false;
        });
  }
  if (plan_->limit_.has_value() &&
      result.rows.size() > static_cast<std::size_t>(*plan_->limit_)) {
    result.rows.resize(static_cast<std::size_t>(*plan_->limit_));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------
//
// Snapshot file layout (normative byte-offset tables: DESIGN.md §6.2):
//   8 bytes   magic "FWDSNAP1"
//   u32       format version (1)
//   u32       CRC32C of the payload
//   u64       payload length
//   payload   versioned ByteWriter frame (plan fingerprint, counters,
//             shedding policy + counters, low slots, high groups)
// The file is written through FaultFs::AtomicWriteFile, so a crash at
// any byte leaves either the previous snapshot or this one, never a mix;
// the CRC catches torn or bit-rotted payloads at restore time.

namespace {

constexpr char kSnapshotMagic[8] = {'F', 'W', 'D', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

bool QueryExecution::SerializeGroup(const Group& group, ByteWriter* writer,
                                    std::string* error) const {
  writer->WriteU32(static_cast<std::uint32_t>(group.key.size()));
  for (const Value& v : group.key) v.SerializeTo(writer);
  writer->WriteDouble(group.weight);
  writer->WriteU64(group.tuples);
  for (std::size_t slot = 0; slot < group.aggs.size(); ++slot) {
    // Each aggregate gets its own length-prefixed frame so Restore can
    // hand it a bounded sub-reader and verify full consumption.
    ByteWriter agg_writer;
    if (!group.aggs[slot]->SerializeTo(&agg_writer)) {
      *error = "aggregate '" + plan_->agg_names_[slot] +
               "' does not support checkpointing";
      return false;
    }
    const std::vector<std::uint8_t>& frame = agg_writer.bytes();
    writer->WriteU32(static_cast<std::uint32_t>(frame.size()));
    writer->WriteBytes(frame.data(), frame.size());
  }
  return true;
}

bool QueryExecution::RestoreGroup(ByteReader* reader, Group* group) {
  std::uint32_t key_size = 0;
  if (!reader->ReadU32(&key_size) ||
      key_size != plan_->group_exprs_.size()) {
    return false;
  }
  group->key.clear();
  group->key.reserve(key_size);
  for (std::uint32_t i = 0; i < key_size; ++i) {
    auto v = Value::Deserialize(reader);
    if (!v) return false;
    group->key.push_back(std::move(*v));
  }
  if (!reader->ReadDouble(&group->weight) || !reader->ReadU64(&group->tuples)) {
    return false;
  }
  group->aggs.clear();
  group->aggs.reserve(plan_->agg_names_.size());
  for (const std::string& name : plan_->agg_names_) {
    std::uint32_t frame_len = 0;
    ByteReader frame(nullptr, 0);
    if (!reader->ReadU32(&frame_len) ||
        !reader->ReadSubReader(frame_len, &frame)) {
      return false;
    }
    std::unique_ptr<AggState> state = AggRegistry::Instance().Create(name);
    if (!state->RestoreFrom(&frame) || !frame.Exhausted()) return false;
    group->aggs.push_back(std::move(state));
  }
  return true;
}

bool QueryExecution::Checkpoint(const std::string& path,
                                std::string* error) const {
  // Cold path: timed unconditionally (serialize + CRC + atomic write,
  // i.e. the fsyncs dominate — see also fwdecay_faultfs_fsync_ns).
  metrics::ScopedTimerSample checkpoint_timer(
      EngineMetrics::Get().checkpoint_ns,
      metrics::MetricsRegistry::Instance().NowSeconds());
  std::vector<std::uint8_t> image;
  if (!CheckpointBytes(&image, error)) return false;
  if (!FaultFs::Instance().AtomicWriteFile(path, image, error)) {
    return false;
  }
  EngineMetrics::Get().checkpoints->Increment();
  EngineMetrics::Get().checkpoint_bytes->Increment(image.size());
  return true;
}

bool QueryExecution::CheckpointBytes(std::vector<std::uint8_t>* out,
                                     std::string* error) const {
  ByteWriter payload;
  payload.WriteU64(plan_->Fingerprint());
  payload.WriteU8(plan_->options_.two_level ? 1 : 0);
  payload.WriteU64(plan_->options_.low_level_slots);
  payload.WriteU64(packets_consumed_);
  payload.WriteU64(tuples_aggregated_);
  payload.WriteU64(low_level_evictions_);
  payload.WriteU64(groups_shed_);
  payload.WriteU64(tuples_shed_);
  payload.WriteU64(policy_.max_groups);
  payload.WriteDouble(policy_.decay_alpha);
  payload.WriteDouble(policy_.landmark);

  std::uint32_t occupied = 0;
  for (const LowSlot& slot : low_table_) {
    if (slot.occupied) ++occupied;
  }
  payload.WriteU32(occupied);
  for (std::size_t i = 0; i < low_table_.size(); ++i) {
    const LowSlot& slot = low_table_[i];
    if (!slot.occupied) continue;
    payload.WriteU64(i);
    payload.WriteU64(slot.hash);
    if (!SerializeGroup(slot.group, &payload, error)) return false;
  }

  // High groups in deterministic key order: snapshots of equal states
  // are byte-identical regardless of table history (insertion order,
  // rehashes, and backward-shift deletions never reach the wire).
  std::vector<const Group*> groups;
  groups.reserve(high_group_count_);
  for (const Group* g : high_->slots) {
    if (g != nullptr) groups.push_back(g);
  }
  std::sort(groups.begin(), groups.end(),
            [](const Group* a, const Group* b) {
              return KeyLess(a->key, b->key);
            });
  payload.WriteU32(static_cast<std::uint32_t>(groups.size()));
  for (const Group* g : groups) {
    if (!SerializeGroup(*g, &payload, error)) return false;
  }

  const std::vector<std::uint8_t>& body = payload.bytes();
  ByteWriter file;
  file.WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  file.WriteU32(kSnapshotVersion);
  file.WriteU32(Crc32c(body.data(), body.size()));
  file.WriteU64(body.size());
  file.WriteBytes(body.data(), body.size());
  *out = file.Take();
  return true;
}

bool QueryExecution::Restore(const std::string& path, std::string* error) {
  // Recovery replay time: the snapshot-load half is timed here; the
  // re-ingest half shows up in the ordinary Consume() counters as the
  // caller re-feeds the trace from packets_consumed().
  metrics::ScopedTimerSample restore_timer(
      EngineMetrics::Get().restore_ns,
      metrics::MetricsRegistry::Instance().NowSeconds());
  std::vector<std::uint8_t> bytes;
  if (!FaultFs::Instance().ReadFile(path, &bytes, error)) return false;
  return RestoreBytes(bytes.data(), bytes.size(), error);
}

bool QueryExecution::RestoreBytes(const std::uint8_t* data, std::size_t size,
                                  std::string* error) {
  ByteReader header(data, size);
  char magic[8] = {};
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::uint64_t payload_len = 0;
  ByteReader payload(nullptr, 0);
  for (char& c : magic) {
    std::uint8_t b = 0;
    if (!header.ReadU8(&b)) {
      *error = "snapshot truncated before header";
      return false;
    }
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    *error = "not a FWDSNAP1 snapshot";
    return false;
  }
  if (!header.ReadU32(&version) || version != kSnapshotVersion) {
    *error = "unsupported snapshot version";
    return false;
  }
  if (!header.ReadU32(&crc) || !header.ReadU64(&payload_len) ||
      payload_len != header.Remaining() ||
      !header.ReadSubReader(payload_len, &payload)) {
    *error = "snapshot payload length mismatch";
    return false;
  }
  if (Crc32c(data + (size - payload_len), payload_len) != crc) {
    *error = "snapshot CRC mismatch (torn or corrupt write)";
    return false;
  }

  std::uint64_t fingerprint = 0;
  std::uint8_t two_level = 0;
  std::uint64_t low_slots = 0;
  if (!payload.ReadU64(&fingerprint) ||
      fingerprint != plan_->Fingerprint()) {
    *error = "snapshot was taken under a different query plan";
    return false;
  }
  if (!payload.ReadU8(&two_level) ||
      (two_level != 0) != plan_->options_.two_level ||
      !payload.ReadU64(&low_slots) ||
      low_slots != plan_->options_.low_level_slots) {
    *error = "snapshot engine options do not match this plan";
    return false;
  }
  std::uint64_t max_groups = 0;
  if (!payload.ReadU64(&packets_consumed_) ||
      !payload.ReadU64(&tuples_aggregated_) ||
      !payload.ReadU64(&low_level_evictions_) ||
      !payload.ReadU64(&groups_shed_) || !payload.ReadU64(&tuples_shed_) ||
      !payload.ReadU64(&max_groups) ||
      !payload.ReadDouble(&policy_.decay_alpha) ||
      !payload.ReadDouble(&policy_.landmark)) {
    *error = "snapshot counters truncated";
    return false;
  }
  policy_.max_groups = static_cast<std::size_t>(max_groups);

  low_table_.clear();
  low_occupied_ = 0;
  if (plan_->options_.two_level) {
    low_table_.resize(plan_->options_.low_level_slots);
  }
  high_->Clear();
  high_group_count_ = 0;

  std::uint32_t occupied = 0;
  if (!payload.ReadU32(&occupied) || occupied > low_table_.size()) {
    *error = "snapshot low-level table corrupt";
    return false;
  }
  for (std::uint32_t i = 0; i < occupied; ++i) {
    std::uint64_t index = 0;
    std::uint64_t hash = 0;
    if (!payload.ReadU64(&index) || index >= low_table_.size() ||
        !payload.ReadU64(&hash) || low_table_[index].occupied) {
      *error = "snapshot low-level table corrupt";
      return false;
    }
    LowSlot& slot = low_table_[index];
    if (!RestoreGroup(&payload, &slot.group)) {
      *error = "snapshot low-level group corrupt";
      return false;
    }
    slot.occupied = true;
    ++low_occupied_;
    slot.hash = hash;
  }

  std::uint32_t n_groups = 0;
  // A group frame is at least 24 bytes (key count + weight + tuples +
  // one length prefix); bound the declared count before the loop.
  if (!payload.ReadU32(&n_groups) || n_groups > payload.Remaining() / 20) {
    *error = "snapshot group count corrupt";
    return false;
  }
  for (std::uint32_t i = 0; i < n_groups; ++i) {
    Group* g = high_->AcquireShell();
    if (!RestoreGroup(&payload, g)) {
      high_->ReleaseShell(g);
      *error = "snapshot group corrupt";
      return false;
    }
    high_->Insert(HashKey(g->key), g);
    ++high_group_count_;
  }
  if (!payload.Exhausted()) {
    *error = "snapshot has trailing bytes";
    return false;
  }
  // The restored counters replace this execution's history; resync the
  // flush baselines so the next FlushMetrics() publishes only genuinely
  // new work (a baseline above the restored counter would underflow the
  // delta).
  flushed_packets_ = packets_consumed_;
  flushed_tuples_ = tuples_aggregated_;
  flushed_evictions_ = low_level_evictions_;
  flushed_groups_shed_ = groups_shed_;
  flushed_tuples_shed_ = tuples_shed_;
  EngineMetrics::Get().restores->Increment();
  return true;
}

// ---------------------------------------------------------------------------
// Sharded execution
// ---------------------------------------------------------------------------

namespace {

// Seed for remixing the group hash into a shard index. Must be a
// *different* function of the key than the group hash itself: the
// low-level table indexes by `hash % slots`, so routing by `hash % N`
// would correlate shard choice with slot index and skew low-table
// occupancy per shard.
constexpr std::uint64_t kShardRouteSeed = 0x5ca1ab1e0ddba11ULL;

// Per-ingest-thread router scratch for ShardedQueryExecution::Consume.
// Capacity is retained across batches, so steady-state routing
// allocates nothing; thread_local (not members) because Consume() is
// documented safe from any number of ingest threads concurrently.
struct RouterScratch {
  BatchEvalScratch eval;
  std::vector<std::uint32_t> sel;
  std::vector<ValueColumn> key_cols;
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint32_t> shard_ids;
  std::vector<std::vector<std::uint32_t>> shard_rows;
};

}  // namespace

ShardedQueryExecution::ShardedQueryExecution(const CompiledQuery& plan,
                                             std::size_t num_shards)
    : plan_(&plan) {
  FWDECAY_CHECK_MSG(num_shards > 0,
                    "ShardedQueryExecution needs at least one shard");
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    {
      MutexLock lock(shard->mu);
      shard->exec = plan.NewExecution();
      shard->exec->UseShardMetrics(s);
    }
    shards_.push_back(std::move(shard));
  }
}

void ShardedQueryExecution::Consume(const PacketBatch& batch) {
  // fwdecay: relaxed-ok(independent monotone cell; RMW atomicity alone prevents lost counts)
  packets_offered_.fetch_add(batch.size(), std::memory_order_relaxed);
  // Router-level offered-packet count goes to the engine-wide family;
  // the per-shard fwdecay_shard_* counters only see post-filter rows.
  EngineMetrics::Get().packets->Increment(batch.size());
  const std::size_t n_in = batch.size();
  if (n_in == 0) return;

  // Router state is thread-local (see RouterScratch): filtering and
  // hashing run lock-free on each ingest thread against capacity-
  // retained scratch; only the per-shard application takes that
  // shard's lock.
  thread_local RouterScratch rs;
  rs.sel.resize(n_in);
  std::size_t n = 0;
  if (plan_->protocol_filter_ != 0) {
    n = simd::FilterByteEq(batch.protocol(), plan_->protocol_filter_, n_in,
                           rs.sel.data());
  } else {
    for (std::size_t i = 0; i < n_in; ++i) {
      rs.sel[i] = static_cast<std::uint32_t>(i);
    }
    n = n_in;
  }
  if (plan_->where_ != nullptr && n > 0) {
    n = EvalPredicateBatch(*plan_->where_, batch, rs.sel.data(), n,
                           &rs.eval);
  }
  if (n == 0) return;

  const std::size_t num_groups = plan_->group_exprs_.size();
  if (rs.key_cols.size() < num_groups) rs.key_cols.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    EvalExprBatch(*plan_->group_exprs_[g], batch, rs.sel.data(), n,
                  &rs.eval, &rs.key_cols[g]);
  }

  if (rs.shard_rows.size() < shards_.size()) {
    rs.shard_rows.resize(shards_.size());
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) rs.shard_rows[s].clear();
  rs.hashes.resize(n);
  ComputeGroupHashes(rs.key_cols, num_groups, n, rs.hashes.data());
  rs.shard_ids.resize(n);
  simd::ShardIndexU64(rs.hashes.data(), n, kShardRouteSeed,
                      static_cast<std::uint32_t>(shards_.size()),
                      rs.shard_ids.data());
  for (std::size_t i = 0; i < n; ++i) {
    rs.shard_rows[rs.shard_ids[i]].push_back(rs.sel[i]);
  }

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (rs.shard_rows[s].empty()) continue;
    Shard& shard = *shards_[s];
    // fwdecay: hotpath-lock-ok(per-shard lock amortized over the shard's whole row slice)
    MutexLock lock(shard.mu);
    shard.exec->ConsumeFiltered(batch, rs.shard_rows[s].data(),
                                rs.shard_rows[s].size());
  }
}

ResultSet ShardedQueryExecution::Finish() {
  // Each shard flushes its low level under its own policy (so per-shard
  // shedding bounds apply through the flush, exactly as in the
  // non-sharded Finish), then donates its groups to a fresh policy-free
  // execution. Shard key spaces are disjoint, so the donation is a pure
  // move — no aggregate Merge, no FP reassociation, no re-shedding.
  std::unique_ptr<QueryExecution> merged = plan_->NewExecution();
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->exec->FlushLowLevel();
    // Publish the tail deltas now that the shard has quiesced, so a
    // scrape right after Finish() sees counts matching the result set
    // instead of lagging by up to kMetricsFlushPeriod batches.
    shard->exec->FlushMetrics();
    merged->MergeFrom(*shard->exec);
  }
  return merged->Finish();
}

void ShardedQueryExecution::SetOverloadPolicy(const OverloadPolicy& policy) {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->exec->SetOverloadPolicy(policy);
  }
}

std::uint64_t ShardedQueryExecution::tuples_aggregated() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->exec->tuples_aggregated();
  }
  return total;
}

std::uint64_t ShardedQueryExecution::low_level_evictions() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->exec->low_level_evictions();
  }
  return total;
}

std::uint64_t ShardedQueryExecution::groups_shed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->exec->groups_shed();
  }
  return total;
}

std::uint64_t ShardedQueryExecution::tuples_shed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->exec->tuples_shed();
  }
  return total;
}

std::size_t ShardedQueryExecution::GroupCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->exec->GroupCount();
  }
  return total;
}

void ShardedQueryExecution::CheckInvariants() const {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->exec->CheckInvariants();
  }
}

// ---------------------------------------------------------------------------
// Pipelined execution (shared-nothing, DESIGN.md §14)
// ---------------------------------------------------------------------------

namespace {

// Pins the calling thread to one core (Linux; no-op elsewhere). Best
// effort: a failed setaffinity (e.g. restricted cpuset) just leaves the
// thread floating.
void PinCallingThreadToCore(std::size_t index) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % hw), &set);
  (void)::sched_setaffinity(0, sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

struct PipelinedQueryExecution::Shard {
  // Router -> worker: full sub-batches; ownership moves with the batch.
  SpscRing<PacketBatch> to_worker;
  // Worker -> router: consumed batches, Clear()'d for reuse.
  SpscRing<PacketBatch> recycle;
  std::unique_ptr<QueryExecution> exec;
  // Router-side gather under construction (not yet published).
  PacketBatch pending;
  sched::Thread worker;

  Shard(std::size_t ring_capacity, std::size_t batch_capacity)
      : to_worker(ring_capacity),
        recycle(ring_capacity),
        pending(batch_capacity) {}
};

PipelinedQueryExecution::PipelinedQueryExecution(const CompiledQuery& plan,
                                                 const Options& options)
    : plan_(&plan), options_(options) {
  FWDECAY_CHECK_MSG(options.num_shards > 0,
                    "PipelinedQueryExecution needs at least one shard");
  shards_.reserve(options.num_shards);
  shard_rows_.resize(options.num_shards);
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    auto shard =
        std::make_unique<Shard>(options.ring_capacity, options.batch_capacity);
    shard->exec = plan.NewExecution();
    shard->exec->UseShardMetrics(s);
    shards_.push_back(std::move(shard));
  }
  // Spawn last: a worker only touches its own (fully constructed) shard
  // plus stop_, and the spawn itself synchronizes-with the worker body.
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    Shard* shard = shards_[s].get();
    shards_[s]->worker =
        sched::Thread([this, shard, s] { WorkerLoop(*shard, s); });
  }
}

PipelinedQueryExecution::~PipelinedQueryExecution() {
  if (!quiesced_) {
    // Abandoned without Finish(): stop the workers without flushing the
    // partial sub-batches. The ring destructors drain what remains.
    stop_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      if (shard->worker.Joinable()) shard->worker.Join();
    }
  }
}

void PipelinedQueryExecution::Consume(const PacketBatch& batch) {
  FWDECAY_DCHECK(!quiesced_);
  packets_offered_ += batch.size();
  // Router-level offered-packet count goes to the engine-wide family;
  // the per-shard fwdecay_shard_* counters only see post-filter rows
  // (same split as the sharded router).
  EngineMetrics::Get().packets->Increment(batch.size());
  const std::size_t n_in = batch.size();
  if (n_in == 0) return;

  // Stage 1 — filter + hash on the router thread, identical algebra to
  // ShardedQueryExecution::Consume (and therefore to the single-thread
  // reference): protocol filter, WHERE, group-key columns, group hash,
  // remixed shard index.
  sel_.resize(n_in);
  std::size_t n = 0;
  if (plan_->protocol_filter_ != 0) {
    n = simd::FilterByteEq(batch.protocol(), plan_->protocol_filter_, n_in,
                           sel_.data());
  } else {
    for (std::size_t i = 0; i < n_in; ++i) {
      sel_[i] = static_cast<std::uint32_t>(i);
    }
    n = n_in;
  }
  if (plan_->where_ != nullptr && n > 0) {
    n = EvalPredicateBatch(*plan_->where_, batch, sel_.data(), n,
                           &eval_scratch_);
  }
  if (n == 0) return;

  const std::size_t num_groups = plan_->group_exprs_.size();
  if (key_cols_.size() < num_groups) key_cols_.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    EvalExprBatch(*plan_->group_exprs_[g], batch, sel_.data(), n,
                  &eval_scratch_, &key_cols_[g]);
  }
  hashes_.resize(n);
  ComputeGroupHashes(key_cols_, num_groups, n, hashes_.data());
  shard_ids_.resize(n);
  simd::ShardIndexU64(hashes_.data(), n, kShardRouteSeed,
                      static_cast<std::uint32_t>(shards_.size()),
                      shard_ids_.data());
  for (std::size_t s = 0; s < shards_.size(); ++s) shard_rows_[s].clear();
  for (std::size_t i = 0; i < n; ++i) {
    shard_rows_[shard_ids_[i]].push_back(sel_[i]);
  }

  // Stage 2 — gather each shard's rows (stream order preserved) into
  // that shard's pending sub-batch; full sub-batches transfer whole
  // through the SPSC ring. Partial fills stay pending across Consume()
  // calls and are flushed by Quiesce().
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto& rows = shard_rows_[s];
    if (rows.empty()) continue;
    Shard& shard = *shards_[s];
    std::size_t off = 0;
    while (off < rows.size()) {
      const std::size_t room =
          shard.pending.capacity() - shard.pending.size();
      const std::size_t take = std::min(room, rows.size() - off);
      shard.pending.AppendSelected(batch, rows.data() + off, take);
      off += take;
      if (shard.pending.full()) DispatchPending(shard);
    }
  }
}

void PipelinedQueryExecution::DispatchPending(Shard& shard) {
  if (shard.pending.empty()) return;
  while (!shard.to_worker.TryPush(std::move(shard.pending))) {
    // Backpressure: the shard's ring is full; let its worker run. The
    // failed TryPush leaves `pending` untouched.
    if (sched::InScheduledRegion()) {
      sched::Yield();
    } else {
      // fwdecay: hotpath-cold(backpressure spin runs only when the bounded ring is full)
      std::this_thread::yield();
    }
  }
  if (!shard.recycle.TryPop(&shard.pending)) {
    // fwdecay: hotpath-cold(pool warm-up allocation; the steady state reuses recycled batches)
    shard.pending = PacketBatch(options_.batch_capacity);
  }
}

void PipelinedQueryExecution::WorkerLoop(Shard& shard, std::size_t index) {
  if (options_.pin_cores && !sched::InScheduledRegion()) {
    // Core 0 is left to the router (the caller's thread).
    PinCallingThreadToCore(index + 1);
  }
  std::vector<std::uint32_t> rows;
  rows.reserve(options_.batch_capacity);
  PacketBatch batch(1);
  for (;;) {
    if (!shard.to_worker.TryPop(&batch)) {
      // stop_ is release-stored after the final DispatchPending, so a
      // true load followed by one more empty pop proves no batch can
      // still arrive.
      if (stop_.load(std::memory_order_acquire)) {
        if (!shard.to_worker.TryPop(&batch)) break;
      } else {
        if (sched::InScheduledRegion()) {
          sched::Yield();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
    }
    const std::size_t n = batch.size();
    rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      rows[i] = static_cast<std::uint32_t>(i);
    }
    shard.exec->ConsumeFiltered(batch, rows.data(), n);
    batch.Clear();
    // Offer the cleared batch back to the router; dropping it when the
    // recycle ring is full is fine (the router allocates a fresh one).
    (void)shard.recycle.TryPush(std::move(batch));
  }
}

void PipelinedQueryExecution::SetOverloadPolicy(const OverloadPolicy& policy) {
  FWDECAY_CHECK_MSG(packets_offered_ == 0,
                    "SetOverloadPolicy must precede the first Consume()");
  // No worker has received a batch yet, so no worker touches its exec;
  // the first ring publish orders this write before any worker read.
  for (auto& shard : shards_) shard->exec->SetOverloadPolicy(policy);
}

void PipelinedQueryExecution::Quiesce() {
  if (quiesced_) return;
  quiesced_ = true;
  for (auto& shard : shards_) DispatchPending(*shard);
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) shard->worker.Join();
}

ResultSet PipelinedQueryExecution::Finish() {
  FWDECAY_CHECK_MSG(!finished_,
                    "PipelinedQueryExecution::Finish is one-shot");
  Quiesce();
  finished_ = true;
  // Identical merge contract to ShardedQueryExecution::Finish: each
  // shard flushes its low level under its own policy, then donates its
  // groups to a fresh policy-free execution. Shard key spaces are
  // disjoint, so the donation is a pure move — no aggregate Merge, no
  // FP reassociation, no re-shedding (Section VI-B).
  std::unique_ptr<QueryExecution> merged = plan_->NewExecution();
  for (auto& shard : shards_) {
    shard->exec->FlushLowLevel();
    shard->exec->FlushMetrics();
    merged->MergeFrom(*shard->exec);
  }
  return merged->Finish();
}

std::uint64_t PipelinedQueryExecution::SumQuiesced(
    std::uint64_t (QueryExecution::*getter)() const) const {
  FWDECAY_CHECK_MSG(quiesced_,
                    "pipeline stats are valid once Quiesce() has run");
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += (shard->exec.get()->*getter)();
  return total;
}

std::uint64_t PipelinedQueryExecution::tuples_aggregated() const {
  return SumQuiesced(&QueryExecution::tuples_aggregated);
}

std::uint64_t PipelinedQueryExecution::low_level_evictions() const {
  return SumQuiesced(&QueryExecution::low_level_evictions);
}

std::uint64_t PipelinedQueryExecution::groups_shed() const {
  return SumQuiesced(&QueryExecution::groups_shed);
}

std::uint64_t PipelinedQueryExecution::tuples_shed() const {
  return SumQuiesced(&QueryExecution::tuples_shed);
}

std::size_t PipelinedQueryExecution::GroupCount() const {
  FWDECAY_CHECK_MSG(quiesced_,
                    "pipeline stats are valid once Quiesce() has run");
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->exec->GroupCount();
  return total;
}

void PipelinedQueryExecution::CheckInvariants() const {
  FWDECAY_CHECK_MSG(quiesced_,
                    "the pipeline audit is valid once Quiesce() has run");
  for (const auto& shard : shards_) shard->exec->CheckInvariants();
}

std::string ResultSet::ToString() const {
  std::string s;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) s += "\t";
    s += columns[c];
  }
  s += "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) s += "\t";
      s += row[c].ToString();
    }
    s += "\n";
  }
  return s;
}

}  // namespace fwdecay::dsms
