#include "dsms/engine.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace fwdecay::dsms {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::uint64_t HashKey(const std::vector<Value>& key) {
  std::uint64_t h = 0x12345678abcdef01ULL;
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

// Binds an expression for post-aggregation evaluation: aggregate calls
// become kAggRef slots (appending their name and per-tuple argument
// expressions to the plan), and subtrees matching a GROUP BY expression
// (textually) or a GROUP BY alias become kGroupRef. Any raw column that
// survives is an error — it is neither aggregated nor grouped.
bool BindPostExpr(
    std::unique_ptr<Expr>& expr, const std::vector<std::string>& agg_names,
    const std::vector<std::string>& group_text,
    const std::vector<std::pair<std::string, int>>& alias_to_pos,
    std::vector<std::string>* slot_names,
    std::vector<std::vector<std::unique_ptr<Expr>>>* slot_args,
    std::string* error) {
  if (expr->kind == Expr::Kind::kCall) {
    const std::string name = Lower(expr->name);
    if (std::find(agg_names.begin(), agg_names.end(), name) !=
        agg_names.end()) {
      const int slot = static_cast<int>(slot_names->size());
      slot_names->push_back(name);
      slot_args->push_back(std::move(expr->args));
      expr = Expr::AggRef(slot);
      return true;
    }
  }
  if (expr->kind == Expr::Kind::kColumn) {
    const std::string col = Lower(expr->name);
    for (const auto& [alias, pos] : alias_to_pos) {
      if (alias == col) {
        expr = Expr::GroupRef(pos);
        return true;
      }
    }
  }
  const std::string text = expr->ToString();
  for (std::size_t i = 0; i < group_text.size(); ++i) {
    if (group_text[i] == text) {
      expr = Expr::GroupRef(static_cast<int>(i));
      return true;
    }
  }
  if (expr->kind == Expr::Kind::kColumn) {
    *error = "column '" + expr->name +
             "' is used outside an aggregate and does not match a GROUP BY "
             "expression or alias";
    return false;
  }
  for (auto& arg : expr->args) {
    if (!BindPostExpr(arg, agg_names, group_text, alias_to_pos, slot_names,
                      slot_args, error)) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

std::unique_ptr<CompiledQuery> CompiledQuery::Compile(const std::string& gsql,
                                                      std::string* error) {
  return Compile(gsql, error, Options{});
}

std::unique_ptr<CompiledQuery> CompiledQuery::Compile(const std::string& gsql,
                                                      std::string* error,
                                                      Options options) {
  ParseResult parsed = ParseQuery(gsql);
  if (!parsed.ok()) {
    *error = parsed.error;
    return nullptr;
  }
  return CompileParsed(std::move(*parsed.query), error, options);
}

std::unique_ptr<CompiledQuery> CompiledQuery::CompileParsed(Query query,
                                                            std::string* error,
                                                            Options options) {
  auto plan = std::unique_ptr<CompiledQuery>(new CompiledQuery());
  plan->options_ = options;

  // FROM clause: TCP and UDP are protocol-filtered views of the packet
  // stream; PKT (or anything else) is the raw stream.
  const std::string from = Lower(query.from);
  if (from == "tcp") {
    plan->protocol_filter_ = kProtoTcp;
  } else if (from == "udp") {
    plan->protocol_filter_ = kProtoUdp;
  } else {
    plan->protocol_filter_ = 0;
  }
  plan->where_ = std::move(query.where);

  // Group-by expressions, with alias -> position mapping.
  std::vector<std::pair<std::string, int>> alias_to_pos;
  std::vector<std::string> group_text;
  for (std::size_t i = 0; i < query.group_by.size(); ++i) {
    SelectItem& item = query.group_by[i];
    group_text.push_back(item.expr->ToString());
    if (!item.alias.empty()) {
      alias_to_pos.emplace_back(item.alias, static_cast<int>(i));
    }
    plan->group_exprs_.push_back(std::move(item.expr));
  }

  const std::vector<std::string> agg_names = AggRegistry::Instance().Names();

  for (SelectItem& item : query.select) {
    OutputItem out;
    out.source_text = item.expr->ToString();
    out.column_name = item.alias.empty() ? out.source_text : item.alias;
    if (!BindPostExpr(item.expr, agg_names, group_text, alias_to_pos,
                      &plan->agg_names_, &plan->agg_args_, error)) {
      return nullptr;
    }
    out.post = std::move(item.expr);
    plan->outputs_.push_back(std::move(out));
  }

  // HAVING: a post-aggregation predicate over group columns + aggregates.
  if (query.having != nullptr) {
    if (!BindPostExpr(query.having, agg_names, group_text, alias_to_pos,
                      &plan->agg_names_, &plan->agg_args_, error)) {
      return nullptr;
    }
    plan->having_ = std::move(query.having);
  }

  // ORDER BY: resolve each entry to an output column — by 1-based
  // position, by alias/column name, or by expression text.
  for (OrderItem& item : query.order_by) {
    std::size_t col = plan->outputs_.size();
    if (item.expr->kind == Expr::Kind::kLiteral &&
        item.expr->literal.is_int()) {
      const std::int64_t pos = item.expr->literal.AsInt();
      if (pos < 1 ||
          pos > static_cast<std::int64_t>(plan->outputs_.size())) {
        *error = "ORDER BY position out of range";
        return nullptr;
      }
      col = static_cast<std::size_t>(pos - 1);
    } else {
      const std::string text = item.expr->ToString();
      for (std::size_t i = 0; i < plan->outputs_.size(); ++i) {
        if (plan->outputs_[i].column_name == text ||
            plan->outputs_[i].source_text == text) {
          col = i;
          break;
        }
      }
      if (col == plan->outputs_.size()) {
        *error = "ORDER BY item '" + text +
                 "' does not name an output column";
        return nullptr;
      }
    }
    plan->order_by_.emplace_back(col, item.descending);
  }
  plan->limit_ = query.limit;

  if (plan->options_.two_level) {
    FWDECAY_CHECK_MSG(plan->options_.low_level_slots >= 2,
                      "two-level mode needs at least 2 low-level slots");
  }
  return plan;
}

std::unique_ptr<QueryExecution> CompiledQuery::NewExecution() const {
  return std::make_unique<QueryExecution>(this);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

struct QueryExecution::Group {
  std::vector<Value> key;
  std::vector<std::unique_ptr<AggState>> aggs;
};

struct QueryExecution::LowSlot {
  bool occupied = false;
  std::uint64_t hash = 0;
  Group group;
};

struct QueryExecution::HighTable {
  // hash -> bucket of groups (chained to handle Value-level collisions).
  std::unordered_map<std::uint64_t, std::vector<Group>> map;
};

QueryExecution::QueryExecution(const CompiledQuery* plan)
    : plan_(plan), high_(std::make_unique<HighTable>()) {
  if (plan_->options_.two_level) {
    low_table_.resize(plan_->options_.low_level_slots);
  }
}

QueryExecution::~QueryExecution() = default;

namespace {

std::vector<std::unique_ptr<AggState>> MakeAggStates(
    const std::vector<std::string>& names) {
  std::vector<std::unique_ptr<AggState>> states;
  states.reserve(names.size());
  for (const std::string& name : names) {
    states.push_back(AggRegistry::Instance().Create(name));
  }
  return states;
}

}  // namespace

QueryExecution::Group* QueryExecution::FindOrCreateHighGroup(
    std::uint64_t hash, std::vector<Value>&& key) {
  std::vector<Group>& bucket = high_->map[hash];
  for (Group& g : bucket) {
    if (KeysEqual(g.key, key)) return &g;
  }
  bucket.push_back(Group{std::move(key), MakeAggStates(plan_->agg_names_)});
  return &bucket.back();
}

void QueryExecution::UpdateGroup(Group& group, const Packet& p) {
  std::vector<Value> args;
  for (std::size_t slot = 0; slot < plan_->agg_names_.size(); ++slot) {
    args.clear();
    for (const auto& arg_expr : plan_->agg_args_[slot]) {
      args.push_back(EvalExpr(*arg_expr, p));
    }
    group.aggs[slot]->Update(args);
  }
}

void QueryExecution::EvictToHigh(LowSlot& slot) {
  Group* target =
      FindOrCreateHighGroup(slot.hash, std::move(slot.group.key));
  for (std::size_t i = 0; i < target->aggs.size(); ++i) {
    target->aggs[i]->Merge(*slot.group.aggs[i]);
  }
  slot.occupied = false;
  slot.group.key.clear();
  slot.group.aggs.clear();
  ++low_level_evictions_;
}

void QueryExecution::Consume(const Packet& p) {
  if (plan_->protocol_filter_ != 0 && p.protocol != plan_->protocol_filter_) {
    return;
  }
  if (plan_->where_ != nullptr && !EvalPredicate(*plan_->where_, p)) return;
  ++tuples_aggregated_;

  std::vector<Value> key;
  key.reserve(plan_->group_exprs_.size());
  for (const auto& g : plan_->group_exprs_) key.push_back(EvalExpr(*g, p));
  const std::uint64_t hash = HashKey(key);

  if (!plan_->options_.two_level) {
    Group* group = FindOrCreateHighGroup(hash, std::move(key));
    UpdateGroup(*group, p);
    return;
  }

  // Two-level path: direct-mapped low-level table; collisions evict the
  // incumbent partial group to the high level (GS's low/high split).
  LowSlot& slot = low_table_[hash % low_table_.size()];
  if (slot.occupied && (slot.hash != hash || !KeysEqual(slot.group.key, key))) {
    EvictToHigh(slot);
  }
  if (!slot.occupied) {
    slot.occupied = true;
    slot.hash = hash;
    slot.group.key = std::move(key);
    slot.group.aggs = MakeAggStates(plan_->agg_names_);
  }
  UpdateGroup(slot.group, p);
}

std::size_t QueryExecution::GroupCount() const {
  std::size_t n = 0;
  for (const auto& [hash, bucket] : high_->map) n += bucket.size();
  for (const LowSlot& slot : low_table_) {
    if (slot.occupied) ++n;
  }
  return n;
}

ResultSet QueryExecution::Finish() {
  // Flush remaining low-level partial groups.
  for (LowSlot& slot : low_table_) {
    if (slot.occupied) EvictToHigh(slot);
  }

  ResultSet result;
  for (const auto& out : plan_->outputs_) result.columns.push_back(out.column_name);

  std::vector<Group*> groups;
  for (auto& [hash, bucket] : high_->map) {
    for (Group& g : bucket) groups.push_back(&g);
  }
  std::sort(groups.begin(), groups.end(), [](const Group* a, const Group* b) {
    const std::size_t n = std::min(a->key.size(), b->key.size());
    for (std::size_t i = 0; i < n; ++i) {
      // Mixed-type keys are ordered int < double < string per slot; within
      // a query every slot has a fixed type, so this only breaks ties.
      const Value& x = a->key[i];
      const Value& y = b->key[i];
      if (!(x == y)) {
        if (x.is_string() != y.is_string()) return y.is_string();
        return Compare(x, y) < 0;
      }
    }
    return a->key.size() < b->key.size();
  });

  for (Group* g : groups) {
    std::vector<Value> agg_values;
    agg_values.reserve(g->aggs.size());
    for (const auto& agg : g->aggs) agg_values.push_back(agg->Finalize());
    if (plan_->having_ != nullptr &&
        !EvalPostPredicate(*plan_->having_, agg_values, g->key)) {
      continue;
    }
    std::vector<Value> row;
    row.reserve(plan_->outputs_.size());
    for (const auto& out : plan_->outputs_) {
      row.push_back(EvalPostExpr(*out.post, agg_values, g->key));
    }
    result.rows.push_back(std::move(row));
  }

  // ORDER BY (stable, lexicographic over the listed columns); the rows
  // are already in group-key order, which remains the tiebreaker.
  if (!plan_->order_by_.empty()) {
    std::stable_sort(
        result.rows.begin(), result.rows.end(),
        [this](const std::vector<Value>& a, const std::vector<Value>& b) {
          for (const auto& [col, desc] : plan_->order_by_) {
            const int cmp = Compare(a[col], b[col]);
            if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
          }
          return false;
        });
  }
  if (plan_->limit_.has_value() &&
      result.rows.size() > static_cast<std::size_t>(*plan_->limit_)) {
    result.rows.resize(static_cast<std::size_t>(*plan_->limit_));
  }
  return result;
}

std::string ResultSet::ToString() const {
  std::string s;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) s += "\t";
    s += columns[c];
  }
  s += "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) s += "\t";
      s += row[c].ToString();
    }
    s += "\n";
  }
  return s;
}

}  // namespace fwdecay::dsms
