#ifndef FWDECAY_DSMS_BUNDLE_H_
#define FWDECAY_DSMS_BUNDLE_H_

#include <memory>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "util/check.h"

// Multi-query shared execution: real DSMSs (GS included) run many
// continuous queries over the same packet stream in a single pass. The
// bundle owns the compiled plans and their executions and fans each
// packet out once, so adding queries does not add stream scans.

namespace fwdecay::dsms {

class QueryBundle {
 public:
  /// Compiles and adds a query; returns its index, or -1 with *error.
  int Add(const std::string& gsql, std::string* error,
          CompiledQuery::Options options = {}) {
    auto plan = CompiledQuery::Compile(gsql, error, options);
    if (plan == nullptr) return -1;
    entries_.push_back(Entry{std::move(plan), nullptr, gsql});
    entries_.back().exec = entries_.back().plan->NewExecution();
    return static_cast<int>(entries_.size()) - 1;
  }

  /// Feeds one packet to every query.
  void Consume(const Packet& p) {
    for (Entry& e : entries_) e.exec->Consume(p);
  }

  std::size_t size() const { return entries_.size(); }
  const std::string& query_text(std::size_t i) const {
    return entries_[i].gsql;
  }

  /// Finishes query `i` and restarts its execution (so the bundle can
  /// keep consuming — per-epoch emission for all queries at once).
  ResultSet Finish(std::size_t i) {
    FWDECAY_CHECK(i < entries_.size());
    ResultSet rs = entries_[i].exec->Finish();
    entries_[i].exec = entries_[i].plan->NewExecution();
    return rs;
  }

  /// Finishes every query in order, restarting all executions.
  std::vector<ResultSet> FinishAll() {
    std::vector<ResultSet> out;
    out.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out.push_back(Finish(i));
    }
    return out;
  }

 private:
  struct Entry {
    std::unique_ptr<CompiledQuery> plan;
    std::unique_ptr<QueryExecution> exec;
    std::string gsql;
  };
  std::vector<Entry> entries_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_BUNDLE_H_
