#include "dsms/value.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/hash.h"

namespace fwdecay::dsms {

std::int64_t Value::AsInt() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(v_));
  FWDECAY_CHECK_MSG(false, "string value used as integer");
  return 0;
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  FWDECAY_CHECK_MSG(false, "string value used as double");
  return 0.0;
}

const std::string& Value::AsString() const {
  FWDECAY_CHECK_MSG(is_string(), "non-string value used as string");
  return std::get<std::string>(v_);
}

std::string Value::ToString() const {
  if (is_string()) return std::get<std::string>(v_);
  char buf[64];
  if (is_int()) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::get<std::int64_t>(v_)));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
  }
  return buf;
}

std::uint64_t Value::Hash() const {
  if (is_int()) {
    return HashU64(static_cast<std::uint64_t>(std::get<std::int64_t>(v_)), 1);
  }
  if (is_double()) {
    const double d = std::get<double>(v_);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return HashU64(bits, 2);
  }
  return HashString(std::get<std::string>(v_), 3);
}

void Value::SerializeTo(ByteWriter* writer) const {
  if (is_int()) {
    writer->WriteU8(0);
    writer->WriteI64(std::get<std::int64_t>(v_));
  } else if (is_double()) {
    writer->WriteU8(1);
    writer->WriteDouble(std::get<double>(v_));
  } else {
    writer->WriteU8(2);
    writer->WriteString(std::get<std::string>(v_));
  }
}

std::optional<Value> Value::Deserialize(ByteReader* reader) {
  // In-place construction (no Value temporary moved into the optional):
  // GCC 12 flags the variant move with a spurious -Wmaybe-uninitialized
  // under sanitizer instrumentation.
  std::uint8_t tag = 0;
  if (!reader->ReadU8(&tag)) return std::nullopt;
  switch (tag) {
    case 0: {
      std::int64_t i = 0;
      if (!reader->ReadI64(&i)) return std::nullopt;
      return std::optional<Value>(std::in_place, i);
    }
    case 1: {
      double d = 0.0;
      if (!reader->ReadDouble(&d)) return std::nullopt;
      return std::optional<Value>(std::in_place, d);
    }
    case 2: {
      std::string s;
      if (!reader->ReadString(&s)) return std::nullopt;
      return std::optional<Value>(std::in_place, std::move(s));
    }
    default:
      return std::nullopt;
  }
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_string() || b.is_string()) {
    return a.is_string() && b.is_string() && a.AsString() == b.AsString();
  }
  if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
  return a.AsDouble() == b.AsDouble();
}

namespace {

// Applies an arithmetic op with integer/double promotion.
template <typename IntOp, typename DblOp>
Value Arith(const Value& a, const Value& b, IntOp iop, DblOp dop) {
  FWDECAY_CHECK_MSG(!a.is_string() && !b.is_string(),
                    "arithmetic on string value");
  if (a.is_int() && b.is_int()) return Value(iop(a.AsInt(), b.AsInt()));
  return Value(dop(a.AsDouble(), b.AsDouble()));
}

}  // namespace

Value operator+(const Value& a, const Value& b) {
  return Arith(
      a, b, [](std::int64_t x, std::int64_t y) { return x + y; },
      [](double x, double y) { return x + y; });
}

Value operator-(const Value& a, const Value& b) {
  return Arith(
      a, b, [](std::int64_t x, std::int64_t y) { return x - y; },
      [](double x, double y) { return x - y; });
}

Value operator*(const Value& a, const Value& b) {
  return Arith(
      a, b, [](std::int64_t x, std::int64_t y) { return x * y; },
      [](double x, double y) { return x * y; });
}

Value operator/(const Value& a, const Value& b) {
  return Arith(
      a, b,
      [](std::int64_t x, std::int64_t y) {
        FWDECAY_CHECK_MSG(y != 0, "integer division by zero");
        return x / y;
      },
      [](double x, double y) { return x / y; });
}

Value operator%(const Value& a, const Value& b) {
  return Arith(
      a, b,
      [](std::int64_t x, std::int64_t y) {
        FWDECAY_CHECK_MSG(y != 0, "integer modulo by zero");
        return x % y;
      },
      [](double x, double y) { return std::fmod(x, y); });
}

int Compare(const Value& a, const Value& b) {
  if (a.is_string() || b.is_string()) {
    FWDECAY_CHECK_MSG(a.is_string() && b.is_string(),
                      "comparing string with non-string");
    return a.AsString().compare(b.AsString());
  }
  if (a.is_int() && b.is_int()) {
    const std::int64_t x = a.AsInt();
    const std::int64_t y = b.AsInt();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const double x = a.AsDouble();
  const double y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

}  // namespace fwdecay::dsms
