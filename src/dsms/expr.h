#ifndef FWDECAY_DSMS_EXPR_H_
#define FWDECAY_DSMS_EXPR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsms/batch.h"
#include "dsms/column.h"
#include "dsms/packet.h"
#include "dsms/value.h"

namespace fwdecay::dsms {

/// Binary operators of the GSQL expression language.
enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// Expression AST node. The same node type covers scalar expressions,
/// predicates (comparisons yield int 0/1), and function/aggregate calls;
/// the planner decides which calls are aggregates.
struct Expr {
  enum class Kind {
    kColumn, kLiteral, kStar, kBinary, kNeg, kCall,
    kAggRef,   // planner-internal: finalized aggregate slot
    kGroupRef  // planner-internal: group-by key position
  };

  Kind kind = Kind::kLiteral;
  std::string name;             // column name or call function name
  Value literal;                // kLiteral payload
  BinOp op = BinOp::kAdd;       // kBinary operator
  int agg_index = -1;           // kAggRef: slot in the group's agg states
  int group_index = -1;         // kGroupRef: position in the group key
  std::vector<std::unique_ptr<Expr>> args;  // operands / call arguments

  static std::unique_ptr<Expr> Column(std::string name);
  static std::unique_ptr<Expr> Literal(Value v);
  static std::unique_ptr<Expr> Star();
  /// Planner-internal: placeholder for the finalized value of the
  /// group's agg_index-th aggregate (see engine.h).
  static std::unique_ptr<Expr> AggRef(int index);
  /// Planner-internal: placeholder for the group key's index-th value.
  static std::unique_ptr<Expr> GroupRef(int index);
  static std::unique_ptr<Expr> Binary(BinOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> Neg(std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Call(std::string func,
                                    std::vector<std::unique_ptr<Expr>> args);

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// True if this subtree contains a call to one of `agg_names`
  /// (case-insensitive) — used by the planner to split select items into
  /// group expressions and aggregates.
  bool ContainsCall(const std::vector<std::string>& agg_names) const;

  /// Canonical text form, used to match select items against group-by
  /// expressions and for error messages.
  std::string ToString() const;
};

/// True if the packet schema has a column of this name.
bool IsKnownColumn(const std::string& name);

/// Reads a schema column from a packet. Columns (all integer-valued
/// except dtime): time (whole seconds), dtime (fractional seconds),
/// srcIP, destIP, srcPort, destPort, len, protocol.
Value ReadColumn(const std::string& name, const Packet& p);

/// Evaluates a scalar expression (no aggregate calls) against a packet.
/// Scalar functions available: exp, ln, sqrt, abs, floor, pow.
Value EvalExpr(const Expr& e, const Packet& p);

/// Evaluates a predicate: nonzero numeric result = true.
bool EvalPredicate(const Expr& e, const Packet& p);

/// Evaluates a post-aggregation expression: kAggRef nodes read from
/// `agg_values`, kGroupRef nodes from `group_key`; raw column references
/// are not allowed (the planner replaced every bindable one). Supports
/// the full operator set including comparisons and logic, so it also
/// evaluates HAVING predicates.
Value EvalPostExpr(const Expr& e, const std::vector<Value>& agg_values,
                   const std::vector<Value>& group_key);

/// Truthiness of a post-aggregation predicate (HAVING).
bool EvalPostPredicate(const Expr& e, const std::vector<Value>& agg_values,
                       const std::vector<Value>& group_key);

/// Reusable buffer pool for the batch evaluators. Intermediate value
/// columns and index vectors are acquired per expression node and
/// released on the way out, so steady-state batch evaluation performs no
/// allocation at all once the pool has warmed up. Not thread-safe: one
/// scratch per evaluating thread.
class BatchEvalScratch {
 public:
  /// Borrows an empty value column; Release() returns it to the pool.
  ValueColumn* AcquireColumn() {
    if (free_columns_.empty()) {
      // fwdecay: hotpath-cold(pool growth: once per plan expression depth until warm)
      owned_columns_.push_back(std::make_unique<ValueColumn>());
      return owned_columns_.back().get();
    }
    ValueColumn* col = free_columns_.back();
    free_columns_.pop_back();
    return col;
  }
  void ReleaseColumn(ValueColumn* col) {
    col->clear();
    free_columns_.push_back(col);
  }

  /// Borrows an empty column-pointer list (kCall argument columns;
  /// calls nest, so these pool like the columns themselves).
  std::vector<ValueColumn*>* AcquireColumnList() {
    if (free_column_lists_.empty()) {
      owned_column_lists_.push_back(
          std::make_unique<std::vector<ValueColumn*>>());
      return owned_column_lists_.back().get();
    }
    std::vector<ValueColumn*>* list = free_column_lists_.back();
    free_column_lists_.pop_back();
    return list;
  }
  void ReleaseColumnList(std::vector<ValueColumn*>* list) {
    list->clear();
    free_column_lists_.push_back(list);
  }

  /// Row-gather buffer for applying scalar functions over evaluated
  /// argument columns. Never nested: a kCall node's argument columns are
  /// fully evaluated (including inner calls) before its gather loop
  /// runs, so one buffer per scratch suffices.
  std::vector<Value>* RowArgsBuf() { return &row_args_; }

  /// Borrows an empty row-index vector (for selection merging).
  std::vector<std::uint32_t>* AcquireIndex() {
    if (free_indexes_.empty()) {
      owned_indexes_.push_back(
          std::make_unique<std::vector<std::uint32_t>>());
      return owned_indexes_.back().get();
    }
    std::vector<std::uint32_t>* idx = free_indexes_.back();
    free_indexes_.pop_back();
    return idx;
  }
  void ReleaseIndex(std::vector<std::uint32_t>* idx) {
    idx->clear();
    free_indexes_.push_back(idx);
  }

 private:
  std::vector<std::unique_ptr<ValueColumn>> owned_columns_;
  std::vector<ValueColumn*> free_columns_;
  std::vector<std::unique_ptr<std::vector<ValueColumn*>>>
      owned_column_lists_;
  std::vector<std::vector<ValueColumn*>*> free_column_lists_;
  std::vector<Value> row_args_;
  std::vector<std::unique_ptr<std::vector<std::uint32_t>>> owned_indexes_;
  std::vector<std::vector<std::uint32_t>*> free_indexes_;
};

/// Batched predicate evaluation over a selection vector. `sel[0..n)`
/// holds ascending row indices into `batch`; on return it has been
/// compacted in place to the rows where `e` is true and the new count is
/// returned. Logical AND/OR keep the per-tuple short-circuit semantics
/// (the right operand is only evaluated on rows the left operand did not
/// decide), so guarded expressions like `len > 0 and 100/len > 2` behave
/// exactly as in EvalPredicate.
std::size_t EvalPredicateBatch(const Expr& e, const PacketBatch& batch,
                               std::uint32_t* sel, std::size_t n,
                               BatchEvalScratch* scratch);

/// Batched scalar-expression evaluation: fills `*out` with one value per
/// selected row (out->size() == n, out[i] = e evaluated on row sel[i]).
/// Column and scalar-function names are resolved once per call, not once
/// per row; columns over int64/double rows stay in typed storage and run
/// through the util/simd.h kernels, bit-exact with the per-tuple
/// evaluator. `out` is caller-owned; its capacity is reused across calls.
void EvalExprBatch(const Expr& e, const PacketBatch& batch,
                   const std::uint32_t* sel, std::size_t n,
                   BatchEvalScratch* scratch, ValueColumn* out);

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_EXPR_H_
