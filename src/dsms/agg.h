#ifndef FWDECAY_DSMS_AGG_H_
#define FWDECAY_DSMS_AGG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dsms/column.h"
#include "dsms/value.h"
#include "util/bytes.h"

// Aggregate-function framework of the mini DSMS.
//
// Mirrors the GS architecture the paper builds on (Section I/VIII): the
// engine ships with the built-in SQL aggregates (count, sum, avg, min,
// max) and exposes the same *UDAF* extension hook GS has — arbitrary
// C++ aggregation code invoked per tuple with evaluated arguments. The
// paper's entire experimental apparatus (weighted SpaceSaving, samplers,
// EH baselines) plugs in through this interface; see udafs.h.

namespace fwdecay::dsms {

// ValueColumn (one evaluated argument expression over a batch's
// selected rows, column-at-a-time layout; see EvalExprBatch in expr.h)
// now lives in dsms/column.h as a typed class.

/// Per-group aggregation state. One instance per (group, aggregate call).
class AggState {
 public:
  virtual ~AggState() = default;

  /// Folds one tuple's evaluated argument list into the state.
  virtual void Update(std::span<const Value> args) = 0;

  /// Folds a run of tuples from evaluated argument *columns*:
  /// args_columns[a][row] is argument `a` of the tuple at dense row
  /// index `row`; `rows` lists the (ascending) rows belonging to this
  /// state's group. The default implementation gathers each row into a
  /// reused scratch buffer and calls Update(), preserving per-tuple
  /// semantics bit for bit; hot aggregates override it with a tight
  /// column loop. Overrides must process rows in order — samplers draw
  /// from their RNG per row, and FP accumulation order defines the
  /// engine's bit-exactness contract (DESIGN.md §8).
  virtual void UpdateBatch(std::span<const ValueColumn> args_columns,
                           std::span<const std::uint32_t> rows);

  /// Merges another state of the same concrete type (used by the
  /// two-level aggregation split when the low level evicts a partial
  /// group, and by distributed combination). Implementations may
  /// CHECK-fail if merging is not meaningful for them.
  virtual void Merge(AggState& other) = 0;

  /// Produces the output value for the group.
  virtual Value Finalize() const = 0;

  /// Writes the state's *exact* contents for engine checkpointing: a
  /// restored state must not just finalize to the same value, it must
  /// evolve identically under future updates (recovery-replay proves
  /// equality with the uninterrupted run bit for bit). Returns false if
  /// this aggregate does not support checkpointing; the engine then
  /// refuses to snapshot the plan rather than write a partial snapshot.
  virtual bool SerializeTo(ByteWriter* writer) const;

  /// Restores state written by SerializeTo into a freshly created
  /// instance of the same aggregate. Returns false on truncated or
  /// corrupt input (the instance is then unusable and must be dropped).
  virtual bool RestoreFrom(ByteReader* reader);

 private:
  // Row-gather buffer for the default UpdateBatch (reused across calls
  // so the batched path never allocates per tuple). Pure scratch: not
  // part of the aggregate's logical state, never serialized.
  std::vector<Value> update_scratch_;
};

/// Creates a fresh state for one group.
using AggFactory = std::function<std::unique_ptr<AggState>()>;

/// Name-to-factory registry. Built-in aggregates are pre-registered;
/// UDAFs are added with Register() — no query-language or engine changes
/// required, which is the deployment story of Section VI.
class AggRegistry {
 public:
  /// The process-wide registry (lazily constructed, never destroyed).
  static AggRegistry& Instance();

  /// Registers (or replaces) an aggregate under a lowercase name.
  void Register(const std::string& name, AggFactory factory);

  /// True if `name` (any case) is a known aggregate.
  bool Contains(const std::string& name) const;

  /// Creates a state; CHECK-fails for unknown names.
  std::unique_ptr<AggState> Create(const std::string& name) const;

  /// All registered lowercase names (for the planner's classifier).
  std::vector<std::string> Names() const;

 private:
  AggRegistry();

  std::vector<std::pair<std::string, AggFactory>> entries_;
};

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_AGG_H_
