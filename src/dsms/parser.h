#ifndef FWDECAY_DSMS_PARSER_H_
#define FWDECAY_DSMS_PARSER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsms/expr.h"

// GSQL-subset parser. The supported grammar covers the queries in the
// paper's Sections IV and VIII, e.g.:
//
//   select tb, destIP, destPort,
//          sum(len * (time % 60) * (time % 60)) / 3600
//   from TCP
//   group by time/60 as tb, destIP, destPort
//
//   select tb, PRISAMP(srcIP, exp(time % 60)) from TCP group by time/60 as tb
//
// Grammar (case-insensitive keywords):
//   query     := SELECT selitem (',' selitem)* FROM ident
//                [WHERE expr] [GROUP BY selitem (',' selitem)*]
//                [HAVING expr] [ORDER BY expr [ASC|DESC] (',' ...)*]
//                [LIMIT number]
//   selitem   := expr [AS ident]
//   expr      := or-expr with the usual precedence:
//                or < and < comparisons < +,- < *,/,% < unary- < primary
//   primary   := number | 'string' | ident | ident '(' [expr,*|*] ')' |
//                '(' expr ')'

namespace fwdecay::dsms {

/// Upper bound on accepted GSQL text. ParseQuery rejects longer input
/// before the lexer allocates anything, and the server's frame decoder
/// enforces the same bound at the wire (mirroring the FWDTRC02
/// hostile-count discipline: validate declared sizes before paying for
/// them). Every query in the paper is under 200 bytes; 16 KiB leaves
/// room for generated queries while keeping a hostile registration from
/// turning the parser into an allocation amplifier.
inline constexpr std::size_t kMaxGsqlBytes = 16 * 1024;

/// One select-list or group-by entry: an expression plus optional alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  // empty when not aliased
};

/// One ORDER BY entry: an expression (resolved against the output
/// columns by the planner) plus direction.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

/// Parsed query (unvalidated; the engine's planner binds and checks it).
struct Query {
  std::vector<SelectItem> select;
  std::string from;  // stream name, e.g. "TCP", "UDP", "PKT"
  std::unique_ptr<Expr> where;  // null when absent
  std::vector<SelectItem> group_by;
  std::unique_ptr<Expr> having;  // null when absent
  std::vector<OrderItem> order_by;
  std::optional<std::int64_t> limit;
};

/// Outcome of parsing: either a query or a diagnostic (no exceptions).
struct ParseResult {
  std::optional<Query> query;
  std::string error;  // empty on success

  bool ok() const { return query.has_value(); }
};

/// Parses GSQL text. Returns a diagnostic with position info on failure.
ParseResult ParseQuery(const std::string& text);

/// Outcome of parsing a standalone expression.
struct ExprParseResult {
  std::unique_ptr<Expr> expr;
  std::string error;  // empty on success

  bool ok() const { return expr != nullptr; }
};

/// Parses a standalone expression (used by tests and ad-hoc predicates).
ExprParseResult ParseExpressionOnly(const std::string& text);

}  // namespace fwdecay::dsms

#endif  // FWDECAY_DSMS_PARSER_H_
