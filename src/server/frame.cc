#include "server/frame.h"

#include <algorithm>
#include <cstring>

#include "dsms/parser.h"
#include "dsms/value.h"
#include "server/tenant.h"

namespace fwdecay::server {

namespace {

// One packet record, FWDTRC02 layout (see dsms/trace_io.cc). The codec
// is duplicated rather than exported from trace_io so the wire format
// and the trace format can evolve independently; the shared constant
// kPacketWireBytes pins them to the same width today.
void AppendPacketRecord(ByteWriter* w, const dsms::Packet& p) {
  w->WriteDouble(p.time);
  w->WriteU32(p.src_ip);
  w->WriteU32(p.dest_ip);
  w->WriteU32(p.src_port);
  w->WriteU32(p.dest_port);
  w->WriteU32(p.len);
  w->WriteU8(p.protocol);
}

bool ParsePacketRecord(ByteReader* r, dsms::Packet* p) {
  std::uint32_t src_port = 0;
  std::uint32_t dest_port = 0;
  std::uint8_t protocol = 0;
  if (!r->ReadDouble(&p->time) || !r->ReadU32(&p->src_ip) ||
      !r->ReadU32(&p->dest_ip) || !r->ReadU32(&src_port) ||
      !r->ReadU32(&dest_port) || !r->ReadU32(&p->len) ||
      !r->ReadU8(&protocol)) {
    return false;
  }
  if (src_port > 0xffff || dest_port > 0xffff) return false;
  p->src_port = static_cast<std::uint16_t>(src_port);
  p->dest_port = static_cast<std::uint16_t>(dest_port);
  p->protocol = protocol;
  return true;
}

ByteReader ReaderFor(const std::vector<std::uint8_t>& payload) {
  return ByteReader(payload.data(), payload.size());
}

}  // namespace

const char* ErrCodeName(ErrCode code) {
  switch (code) {
    case ErrCode::kNone:
      return "none";
    case ErrCode::kBadMagic:
      return "bad_magic";
    case ErrCode::kFrameTooLarge:
      return "frame_too_large";
    case ErrCode::kBadFrame:
      return "bad_frame";
    case ErrCode::kQueryTooLong:
      return "query_too_long";
    case ErrCode::kBadName:
      return "bad_name";
    case ErrCode::kParseError:
      return "parse_error";
    case ErrCode::kQuotaExceeded:
      return "quota_exceeded";
    case ErrCode::kUnknownQuery:
      return "unknown_query";
    case ErrCode::kNotAdmitted:
      return "not_admitted";
    case ErrCode::kShuttingDown:
      return "shutting_down";
    case ErrCode::kIdleTimeout:
      return "idle_timeout";
    case ErrCode::kResultTooLarge:
      return "result_too_large";
    case ErrCode::kInternal:
      return "internal";
  }
  return "unknown";
}

FrameReadStatus ReadFrame(Socket& sock, Frame* out, int idle_timeout_ms,
                          int io_timeout_ms, std::string* error) {
  std::uint8_t header[kFrameHeaderBytes];
  // The idle deadline covers the whole header: a peer that opens a
  // connection and sends nothing (or dribbles a partial header) is
  // reaped when this expires.
  const IoStatus hs =
      RecvExactly(sock, header, sizeof(header), idle_timeout_ms, error);
  if (hs == IoStatus::kTimeout) return FrameReadStatus::kTimeout;
  if (hs == IoStatus::kClosed) return FrameReadStatus::kClosed;
  if (hs == IoStatus::kError) return FrameReadStatus::kError;

  std::uint32_t magic = 0;
  std::uint32_t len = 0;
  std::memcpy(&magic, header, sizeof(magic));
  std::memcpy(&len, header + 5, sizeof(len));
  const std::uint8_t type = header[4];

  if (magic != kFrameMagic) {
    *error = "bad frame magic";
    return FrameReadStatus::kBadMagic;
  }
  if (len > kMaxFrameBytes) {
    if (len > kMaxDiscardBytes) {
      *error = "frame of " + std::to_string(len) + " bytes exceeds even the " +
               std::to_string(kMaxDiscardBytes) + " byte drain cap";
      return FrameReadStatus::kError;
    }
    // Drain the oversized payload so the stream stays synchronized and
    // the caller can refuse with a structured reply instead of a
    // disconnect.
    const IoStatus ds = DiscardExactly(sock, len, io_timeout_ms, error);
    if (ds == IoStatus::kTimeout) return FrameReadStatus::kTimeout;
    if (ds == IoStatus::kClosed) return FrameReadStatus::kClosed;
    if (ds == IoStatus::kError) return FrameReadStatus::kError;
    *error = "frame payload of " + std::to_string(len) +
             " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
             " byte limit";
    return FrameReadStatus::kTooLarge;
  }

  out->type = static_cast<MsgType>(type);
  out->payload.assign(len, 0);  // bounded by kMaxFrameBytes above
  if (len > 0) {
    const IoStatus ps =
        RecvExactly(sock, out->payload.data(), len, io_timeout_ms, error);
    if (ps == IoStatus::kTimeout) return FrameReadStatus::kTimeout;
    if (ps == IoStatus::kClosed) return FrameReadStatus::kClosed;
    if (ps == IoStatus::kError) return FrameReadStatus::kError;
  }
  return FrameReadStatus::kOk;
}

IoStatus SendFrame(Socket& sock, MsgType type,
                   const std::vector<std::uint8_t>& payload, int timeout_ms,
                   std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    *error = "refusing to send an oversized frame";
    return IoStatus::kError;
  }
  ByteWriter w;
  w.WriteU32(kFrameMagic);
  w.WriteU8(static_cast<std::uint8_t>(type));
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteBytes(payload.data(), payload.size());
  const std::vector<std::uint8_t> wire = w.Take();
  return SendExactly(sock, wire.data(), wire.size(), timeout_ms, error);
}

// --------------------------------------------------------------------
// Payload codecs

std::vector<std::uint8_t> EncodeHello(const std::string& tenant) {
  ByteWriter w;
  w.WriteString(tenant);
  return w.Take();
}

bool DecodeHello(const std::vector<std::uint8_t>& payload,
                 std::string* tenant) {
  ByteReader r = ReaderFor(payload);
  return r.ReadString(tenant) && r.Exhausted() && ValidTenantName(*tenant);
}

std::vector<std::uint8_t> EncodeRegister(const std::string& name,
                                         const std::string& gsql,
                                         bool two_level) {
  ByteWriter w;
  w.WriteString(name);
  w.WriteString(gsql);
  w.WriteU8(two_level ? 1 : 0);
  return w.Take();
}

bool DecodeRegister(const std::vector<std::uint8_t>& payload,
                    std::string* name, std::string* gsql, bool* two_level,
                    ErrCode* code) {
  ByteReader r = ReaderFor(payload);
  std::uint8_t two = 0;
  if (!r.ReadString(name) || !r.ReadString(gsql) || !r.ReadU8(&two) ||
      !r.Exhausted()) {
    *code = ErrCode::kBadFrame;
    return false;
  }
  if (!ValidQueryName(*name)) {
    *code = ErrCode::kBadName;
    return false;
  }
  // The parser enforces the same bound; rejecting here keeps the text
  // from even reaching the lexer (and names the right error code).
  if (gsql->size() > dsms::kMaxGsqlBytes) {
    *code = ErrCode::kQueryTooLong;
    return false;
  }
  *two_level = two != 0;
  return true;
}

std::vector<std::uint8_t> EncodeRegisterOk(std::uint64_t query_id) {
  ByteWriter w;
  w.WriteU64(query_id);
  return w.Take();
}

bool DecodeRegisterOk(const std::vector<std::uint8_t>& payload,
                      std::uint64_t* query_id) {
  ByteReader r = ReaderFor(payload);
  return r.ReadU64(query_id) && r.Exhausted();
}

std::vector<std::uint8_t> EncodeIngest(std::uint64_t client_seq,
                                       const dsms::PacketBatch& batch) {
  ByteWriter w;
  w.WriteU64(client_seq);
  w.WriteU32(static_cast<std::uint32_t>(batch.size()));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    AppendPacketRecord(&w, batch.Get(i));
  }
  return w.Take();
}

bool DecodeIngest(const std::vector<std::uint8_t>& payload,
                  std::uint64_t* client_seq, dsms::PacketBatch* batch) {
  ByteReader r = ReaderFor(payload);
  std::uint32_t count = 0;
  if (!r.ReadU64(client_seq) || !r.ReadU32(&count)) return false;
  // Hostile-count discipline: the declared count must respect the hard
  // cap AND exactly match the bytes present, checked before any
  // per-packet work.
  if (count > kMaxBatchPackets) return false;
  if (static_cast<std::size_t>(count) * kPacketWireBytes != r.Remaining()) {
    return false;
  }
  dsms::PacketBatch decoded(std::max<std::size_t>(count, 1));
  for (std::uint32_t i = 0; i < count; ++i) {
    dsms::Packet p;
    if (!ParsePacketRecord(&r, &p)) return false;
    (void)decoded.Append(p);
  }
  if (!r.Exhausted()) return false;
  *batch = std::move(decoded);
  return true;
}

std::vector<std::uint8_t> EncodeAck(std::uint64_t client_seq,
                                    std::uint64_t global_seq) {
  ByteWriter w;
  w.WriteU64(client_seq);
  w.WriteU64(global_seq);
  return w.Take();
}

bool DecodeAck(const std::vector<std::uint8_t>& payload,
               std::uint64_t* client_seq, std::uint64_t* global_seq) {
  ByteReader r = ReaderFor(payload);
  return r.ReadU64(client_seq) && r.ReadU64(global_seq) && r.Exhausted();
}

std::vector<std::uint8_t> EncodeBusy(std::uint64_t client_seq,
                                     std::uint32_t queue_depth) {
  ByteWriter w;
  w.WriteU64(client_seq);
  w.WriteU32(queue_depth);
  return w.Take();
}

bool DecodeBusy(const std::vector<std::uint8_t>& payload,
                std::uint64_t* client_seq, std::uint32_t* queue_depth) {
  ByteReader r = ReaderFor(payload);
  return r.ReadU64(client_seq) && r.ReadU32(queue_depth) && r.Exhausted();
}

std::vector<std::uint8_t> EncodePoll(std::uint64_t query_id) {
  ByteWriter w;
  w.WriteU64(query_id);
  return w.Take();
}

bool DecodePoll(const std::vector<std::uint8_t>& payload,
                std::uint64_t* query_id) {
  ByteReader r = ReaderFor(payload);
  return r.ReadU64(query_id) && r.Exhausted();
}

std::vector<std::uint8_t> EncodeResult(const dsms::ResultSet& result) {
  ByteWriter w;
  w.Reserve(64 + 16 * result.columns.size() * (1 + result.rows.size()));
  w.WriteU32(static_cast<std::uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) w.WriteString(c);
  w.WriteU32(static_cast<std::uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    for (const dsms::Value& v : row) v.SerializeTo(&w);
  }
  return w.Take();
}

bool DecodeResult(const std::vector<std::uint8_t>& payload,
                  dsms::ResultSet* result) {
  ByteReader r = ReaderFor(payload);
  std::uint32_t ncols = 0;
  if (!r.ReadU32(&ncols) || ncols > kMaxResultColumns) return false;
  result->columns.clear();
  result->rows.clear();
  result->columns.reserve(ncols);
  for (std::uint32_t i = 0; i < ncols; ++i) {
    std::string c;
    if (!r.ReadString(&c)) return false;
    result->columns.push_back(std::move(c));
  }
  std::uint32_t nrows = 0;
  if (!r.ReadU32(&nrows)) return false;
  // Every serialized Value is at least one byte, so a legitimate row
  // count can never exceed the remaining payload.
  if (ncols > 0 && static_cast<std::size_t>(nrows) >
                       r.Remaining() / std::max<std::uint32_t>(ncols, 1)) {
    return false;
  }
  if (ncols == 0 && nrows > 0) return false;
  result->rows.reserve(nrows);
  for (std::uint32_t i = 0; i < nrows; ++i) {
    std::vector<dsms::Value> row;
    row.reserve(ncols);
    for (std::uint32_t j = 0; j < ncols; ++j) {
      auto v = dsms::Value::Deserialize(&r);
      if (!v.has_value()) return false;
      row.push_back(std::move(*v));
    }
    result->rows.push_back(std::move(row));
  }
  return r.Exhausted();
}

std::vector<std::uint8_t> EncodeStatsOk(const WireStats& stats) {
  ByteWriter w;
  w.WriteU64(stats.global_seq);
  w.WriteU64(stats.batches_acked);
  w.WriteU64(stats.backpressure_total);
  w.WriteU64(stats.groups_shed_total);
  w.WriteU32(stats.queries);
  w.WriteU32(stats.tenants);
  w.WriteU32(stats.queue_depth);
  return w.Take();
}

bool DecodeStatsOk(const std::vector<std::uint8_t>& payload,
                   WireStats* stats) {
  ByteReader r = ReaderFor(payload);
  return r.ReadU64(&stats->global_seq) && r.ReadU64(&stats->batches_acked) &&
         r.ReadU64(&stats->backpressure_total) &&
         r.ReadU64(&stats->groups_shed_total) && r.ReadU32(&stats->queries) &&
         r.ReadU32(&stats->tenants) && r.ReadU32(&stats->queue_depth) &&
         r.Exhausted();
}

std::vector<std::uint8_t> EncodeError(ErrCode code,
                                      const std::string& message) {
  ByteWriter w;
  w.WriteU32(static_cast<std::uint32_t>(code));
  w.WriteString(message);
  return w.Take();
}

bool DecodeError(const std::vector<std::uint8_t>& payload, ErrCode* code,
                 std::string* message) {
  ByteReader r = ReaderFor(payload);
  std::uint32_t raw = 0;
  if (!r.ReadU32(&raw) || !r.ReadString(message) || !r.Exhausted()) {
    return false;
  }
  if (raw > static_cast<std::uint32_t>(ErrCode::kInternal)) return false;
  *code = static_cast<ErrCode>(raw);
  return true;
}

}  // namespace fwdecay::server
