#ifndef FWDECAY_SERVER_FRAME_H_
#define FWDECAY_SERVER_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "server/net.h"
#include "util/bytes.h"

// fwdecayd's length-framed wire protocol (DESIGN.md §11).
//
// Every message is one frame:
//
//   u32 magic "FWF1"  |  u8 type  |  u32 payload_len  |  payload
//
// all little-endian, payload encoded with util/bytes.h. The framing
// follows the FWDTRC02 hostile-input discipline: every declared size is
// validated against hard caps *and* against the bytes actually present
// before any allocation happens, so a hostile or corrupt peer can make
// the server refuse, but never make it over-allocate. Oversized frames
// under the drain cap are read out and answered with a structured
// kError reply — the connection survives; only an unsynchronized stream
// (bad magic) or an undrainable frame costs the session.

namespace fwdecay::server {

inline constexpr std::uint32_t kFrameMagic = 0x31465746;  // "FWF1" (LE)
inline constexpr std::size_t kFrameHeaderBytes = 9;

/// Hard cap on one frame's payload. An ingest frame of kMaxBatchPackets
/// packets fits with room to spare; results are capped to the same
/// bound (the server answers kError(kResultTooLarge) beyond it).
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Frames over kMaxFrameBytes but under this are drained and answered
/// with a structured error; beyond it the connection is dropped (the
/// peer is hostile or garbage — draining would be an amplifier).
inline constexpr std::size_t kMaxDiscardBytes = 4u << 20;

/// Packets per ingest frame. 8192 * 29B wire bytes ≈ 232 KiB, well
/// inside kMaxFrameBytes.
inline constexpr std::size_t kMaxBatchPackets = 8192;

/// Wire bytes per packet record — the FWDTRC02 layout (f64 time,
/// u32 src_ip, u32 dest_ip, u32 src_port, u32 dest_port, u32 len,
/// u8 protocol; ports widened for alignment-free parsing).
inline constexpr std::size_t kPacketWireBytes = 29;

/// Result decode caps (a result frame already fits kMaxFrameBytes; the
/// caps below stop a hostile count from driving reserve()).
inline constexpr std::size_t kMaxResultColumns = 64;

enum class MsgType : std::uint8_t {
  // client -> server
  kHello = 1,     // tenant handshake
  kRegister = 2,  // register a continuous query
  kIngest = 3,    // one packet batch
  kPoll = 4,      // non-destructive result snapshot of one query
  kStats = 5,     // server counters (tests + smoke script)
  // server -> client
  kHelloOk = 16,
  kRegisterOk = 17,
  kAck = 18,    // batch durable + applied
  kBusy = 19,   // bounded ingest queue full: explicit backpressure
  kResult = 20,
  kStatsOk = 21,
  kError = 22,
};

enum class ErrCode : std::uint32_t {
  kNone = 0,
  kBadMagic = 1,        // stream unsynchronized; connection closes
  kFrameTooLarge = 2,   // drained + refused; connection survives
  kBadFrame = 3,        // payload failed validation
  kQueryTooLong = 4,    // GSQL over dsms::kMaxGsqlBytes
  kBadName = 5,         // tenant/query name invalid or duplicate
  kParseError = 6,      // GSQL failed to compile (message has detail)
  kQuotaExceeded = 7,   // tenant admission / query quota hit
  kUnknownQuery = 8,    // poll for an unregistered query id
  kNotAdmitted = 9,     // no Hello yet, or connection limit reached
  kShuttingDown = 10,   // graceful shutdown in progress
  kIdleTimeout = 11,    // connection reaped after idle deadline
  kResultTooLarge = 12, // result exceeds kMaxFrameBytes
  kInternal = 13,       // journal/snapshot failure (message has detail)
};

const char* ErrCodeName(ErrCode code);

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Outcome of ReadFrame. kTooLarge and kBadMagic are protocol-level:
/// the transport is still up, and for kTooLarge even synchronized.
enum class FrameReadStatus {
  kOk,
  kTimeout,   // idle deadline expired before a full header arrived
  kClosed,
  kError,
  kTooLarge,  // oversized frame drained; caller sends structured error
  kBadMagic,  // stream unsynchronized; caller sends error and closes
};

/// Reads one frame. The idle deadline covers the wait for a header (a
/// silent peer is reaped via kTimeout); the I/O deadline bounds the
/// payload transfer once a header has arrived (slow-loris defence).
FrameReadStatus ReadFrame(Socket& sock, Frame* out, int idle_timeout_ms,
                          int io_timeout_ms, std::string* error);

/// Sends one frame (header + payload in a single buffered write).
IoStatus SendFrame(Socket& sock, MsgType type,
                   const std::vector<std::uint8_t>& payload, int timeout_ms,
                   std::string* error);

// --- payload codecs -------------------------------------------------
// Encoders never fail. Decoders return false on any bound or format
// violation without allocating proportionally to attacker-controlled
// counts.

std::vector<std::uint8_t> EncodeHello(const std::string& tenant);
bool DecodeHello(const std::vector<std::uint8_t>& payload,
                 std::string* tenant);

std::vector<std::uint8_t> EncodeRegister(const std::string& name,
                                         const std::string& gsql,
                                         bool two_level);
bool DecodeRegister(const std::vector<std::uint8_t>& payload,
                    std::string* name, std::string* gsql, bool* two_level,
                    ErrCode* code);

std::vector<std::uint8_t> EncodeRegisterOk(std::uint64_t query_id);
bool DecodeRegisterOk(const std::vector<std::uint8_t>& payload,
                      std::uint64_t* query_id);

std::vector<std::uint8_t> EncodeIngest(std::uint64_t client_seq,
                                       const dsms::PacketBatch& batch);
bool DecodeIngest(const std::vector<std::uint8_t>& payload,
                  std::uint64_t* client_seq, dsms::PacketBatch* batch);

std::vector<std::uint8_t> EncodeAck(std::uint64_t client_seq,
                                    std::uint64_t global_seq);
bool DecodeAck(const std::vector<std::uint8_t>& payload,
               std::uint64_t* client_seq, std::uint64_t* global_seq);

std::vector<std::uint8_t> EncodeBusy(std::uint64_t client_seq,
                                     std::uint32_t queue_depth);
bool DecodeBusy(const std::vector<std::uint8_t>& payload,
                std::uint64_t* client_seq, std::uint32_t* queue_depth);

std::vector<std::uint8_t> EncodePoll(std::uint64_t query_id);
bool DecodePoll(const std::vector<std::uint8_t>& payload,
                std::uint64_t* query_id);

std::vector<std::uint8_t> EncodeResult(const dsms::ResultSet& result);
bool DecodeResult(const std::vector<std::uint8_t>& payload,
                  dsms::ResultSet* result);

/// Server counter snapshot carried by kStatsOk (tests and the CI smoke
/// script read these without scraping the HTTP endpoint).
struct WireStats {
  std::uint64_t global_seq = 0;
  std::uint64_t batches_acked = 0;
  std::uint64_t backpressure_total = 0;
  std::uint64_t groups_shed_total = 0;
  std::uint32_t queries = 0;
  std::uint32_t tenants = 0;
  std::uint32_t queue_depth = 0;
};

std::vector<std::uint8_t> EncodeStatsOk(const WireStats& stats);
bool DecodeStatsOk(const std::vector<std::uint8_t>& payload,
                   WireStats* stats);

std::vector<std::uint8_t> EncodeError(ErrCode code,
                                      const std::string& message);
bool DecodeError(const std::vector<std::uint8_t>& payload, ErrCode* code,
                 std::string* message);

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_FRAME_H_
