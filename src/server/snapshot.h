#ifndef FWDECAY_SERVER_SNAPSHOT_H_
#define FWDECAY_SERVER_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

// Snapshot rotation + retention for fwdecayd (DESIGN.md §11).
//
// The data directory holds three kinds of files, all reached through
// util/fault_fs.h so every disk fault is injectable:
//
//   snap-<epoch>.fws      rotated server snapshots (FWDSRV01 images)
//   journal-<epoch>.fwj   write-ahead segments (server/journal.h)
//   CURRENT               the manifest, swapped atomically
//
// CURRENT is the single source of truth — recovery never lists the
// directory. It records the active journal epoch, the GC floor, and
// the retained snapshots newest-first:
//
//   FWDCUR1
//   active 7
//   floor 4
//   snap 7
//   snap 6
//   snap 5
//
// Retention keeps the newest K snapshots. Recovery tries them in
// manifest order: if the newest image fails its CRC (torn or corrupt),
// it falls back to the previous one and replays the extra journal
// segments instead — which is why journal segments are only GC'd below
// the *oldest* retained snapshot's epoch (the floor).

namespace fwdecay::server {

struct Manifest {
  /// Epoch of the journal segment currently being appended to. Bumped
  /// (and persisted) before any record can land in the new segment, so
  /// replay's probe range [snapshot epoch, active] is always complete.
  std::uint64_t active = 0;

  /// Everything below this epoch has been (or may have been) deleted.
  std::uint64_t floor = 0;

  /// Retained snapshot epochs, newest first.
  std::vector<std::uint64_t> snaps;
};

class SnapshotManager {
 public:
  SnapshotManager(std::string dir, std::size_t retain);

  const std::string& dir() const { return dir_; }
  std::size_t retain() const { return retain_; }

  std::string SnapPath(std::uint64_t epoch) const;
  std::string JournalPath(std::uint64_t epoch) const;
  std::string CurrentPath() const;

  /// Loads CURRENT. A missing manifest is a fresh directory: defaults,
  /// ok = true. A present-but-corrupt manifest is an error — silently
  /// starting fresh would discard acknowledged data.
  bool ReadManifest(Manifest* out, std::string* error) const;

  /// Atomically replaces CURRENT.
  bool WriteManifest(const Manifest& m, std::string* error) const;

  /// Publishes snap-<epoch>: writes the image atomically, prepends the
  /// epoch to m->snaps, truncates to the retention limit, advances the
  /// floor, swaps CURRENT, then GC's files below the new floor.
  /// `m` must be the live manifest (already holding active == epoch);
  /// it is updated in place to the published state.
  bool PublishSnapshot(std::uint64_t epoch,
                       const std::vector<std::uint8_t>& image, Manifest* m,
                       std::string* error) const;

 private:
  std::string dir_;
  std::size_t retain_;
};

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_SNAPSHOT_H_
