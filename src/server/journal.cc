#include "server/journal.h"

#include <algorithm>

#include "util/crc32c.h"
#include "util/fault_fs.h"

namespace fwdecay::server {

namespace {

// Same packet layout as the ingest frame (kPacketWireBytes); the batch
// inside a journal record is byte-identical to the batch on the wire,
// so the crash tests can diff the two without a translation layer.
void AppendBatchBody(ByteWriter* w, const dsms::PacketBatch& batch) {
  w->WriteU32(static_cast<std::uint32_t>(batch.size()));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const dsms::Packet p = batch.Get(i);
    w->WriteDouble(p.time);
    w->WriteU32(p.src_ip);
    w->WriteU32(p.dest_ip);
    w->WriteU32(p.src_port);
    w->WriteU32(p.dest_port);
    w->WriteU32(p.len);
    w->WriteU8(p.protocol);
  }
}

bool ParseBatchBody(ByteReader* r, dsms::PacketBatch* batch) {
  std::uint32_t count = 0;
  if (!r->ReadU32(&count)) return false;
  if (count > kMaxBatchPackets) return false;
  if (static_cast<std::size_t>(count) * kPacketWireBytes > r->Remaining()) {
    return false;
  }
  dsms::PacketBatch decoded(std::max<std::size_t>(count, 1));
  for (std::uint32_t i = 0; i < count; ++i) {
    dsms::Packet p;
    std::uint32_t src_port = 0;
    std::uint32_t dest_port = 0;
    std::uint8_t protocol = 0;
    if (!r->ReadDouble(&p.time) || !r->ReadU32(&p.src_ip) ||
        !r->ReadU32(&p.dest_ip) || !r->ReadU32(&src_port) ||
        !r->ReadU32(&dest_port) || !r->ReadU32(&p.len) ||
        !r->ReadU8(&protocol)) {
      return false;
    }
    if (src_port > 0xffff || dest_port > 0xffff) return false;
    p.src_port = static_cast<std::uint16_t>(src_port);
    p.dest_port = static_cast<std::uint16_t>(dest_port);
    p.protocol = protocol;
    (void)decoded.Append(p);
  }
  *batch = std::move(decoded);
  return true;
}

bool DecodeRecordPayload(const std::uint8_t* data, std::size_t size,
                         JournalRecord* out) {
  ByteReader r(data, size);
  std::uint8_t type = 0;
  if (!r.ReadU8(&type) || !r.ReadU64(&out->seq)) return false;
  switch (static_cast<JournalRecordType>(type)) {
    case JournalRecordType::kBatch:
      out->type = JournalRecordType::kBatch;
      return ParseBatchBody(&r, &out->batch) && r.Exhausted();
    case JournalRecordType::kRegister: {
      out->type = JournalRecordType::kRegister;
      std::uint8_t two = 0;
      if (!r.ReadU64(&out->query_id) || !r.ReadString(&out->tenant) ||
          !r.ReadString(&out->name) || !r.ReadString(&out->gsql) ||
          !r.ReadU8(&two) || !r.Exhausted()) {
        return false;
      }
      out->two_level = two != 0;
      return ValidTenantName(out->tenant) && ValidQueryName(out->name) &&
             out->gsql.size() <= dsms::kMaxGsqlBytes;
    }
    case JournalRecordType::kTenant:
      out->type = JournalRecordType::kTenant;
      return DecodeTenantSpec(&r, &out->spec) && r.Exhausted();
  }
  return false;
}

}  // namespace

std::vector<std::uint8_t> EncodeBatchRecord(std::uint64_t seq,
                                            const dsms::PacketBatch& batch) {
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(JournalRecordType::kBatch));
  w.WriteU64(seq);
  AppendBatchBody(&w, batch);
  return w.Take();
}

std::vector<std::uint8_t> EncodeRegisterRecord(
    std::uint64_t seq, std::uint64_t query_id, const std::string& tenant,
    const std::string& name, const std::string& gsql, bool two_level) {
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(JournalRecordType::kRegister));
  w.WriteU64(seq);
  w.WriteU64(query_id);
  w.WriteString(tenant);
  w.WriteString(name);
  w.WriteString(gsql);
  w.WriteU8(two_level ? 1 : 0);
  return w.Take();
}

std::vector<std::uint8_t> EncodeTenantRecord(std::uint64_t seq,
                                             const TenantSpec& spec) {
  ByteWriter w;
  w.WriteU8(static_cast<std::uint8_t>(JournalRecordType::kTenant));
  w.WriteU64(seq);
  EncodeTenantSpec(spec, &w);
  return w.Take();
}

bool JournalWriter::Append(const std::vector<std::uint8_t>& payload,
                           std::string* error) {
  if (payload.size() > kMaxJournalRecordBytes) {
    *error = "journal record over the size cap";
    return false;
  }
  ByteWriter w;
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteBytes(payload.data(), payload.size());
  w.WriteU32(Crc32c(payload.data(), payload.size()));
  const std::vector<std::uint8_t> framed = w.Take();
  if (!FaultFs::Instance().AppendFile(path_, framed.data(),
                                            framed.size(), error)) {
    return false;
  }
  appended_bytes_ += framed.size();
  return true;
}

bool ReadJournalFile(const std::string& path,
                     std::vector<JournalRecord>* records, bool* torn_tail,
                     std::string* error) {
  *torn_tail = false;
  std::vector<std::uint8_t> bytes;
  if (!FaultFs::Instance().ReadFile(path, &bytes, error)) return false;

  ByteReader r(bytes.data(), bytes.size());
  while (r.Remaining() > 0) {
    std::uint32_t len = 0;
    if (r.Remaining() < sizeof(len)) {
      *torn_tail = true;  // partial length word from a crash mid-append
      break;
    }
    (void)r.ReadU32(&len);
    if (len > kMaxJournalRecordBytes ||
        r.Remaining() < static_cast<std::size_t>(len) + sizeof(std::uint32_t)) {
      *torn_tail = true;  // truncated or garbage length
      break;
    }
    ByteReader payload(nullptr, 0);
    (void)r.ReadSubReader(len, &payload);
    std::uint32_t crc = 0;
    (void)r.ReadU32(&crc);
    // A sub-reader borrows [start, start+len) of `bytes`.
    const std::uint8_t* p = bytes.data() + (bytes.size() - r.Remaining()) -
                            sizeof(crc) - static_cast<std::size_t>(len);
    if (Crc32c(p, len) != crc) {
      *torn_tail = true;  // torn write: checksum over a partial record
      break;
    }
    JournalRecord rec;
    if (!DecodeRecordPayload(p, len, &rec)) {
      *torn_tail = true;  // CRC passed but structure is corrupt
      break;
    }
    records->push_back(std::move(rec));
  }
  return true;
}

}  // namespace fwdecay::server
