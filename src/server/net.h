#ifndef FWDECAY_SERVER_NET_H_
#define FWDECAY_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/thread_annotations.h"

// Deadline-aware loopback sockets with injectable faults (DESIGN.md §11).
//
// Every byte fwdecayd moves over TCP flows through SendExactly /
// RecvExactly below. That single choke point buys the same two things
// util/fault_fs.h buys for disk I/O:
//
//   1. Uniform robustness: every call is EINTR-safe, retries partial
//      transfers, and carries an explicit deadline, so a slow or stalled
//      peer can never wedge a server thread (slow-loris defence), and a
//      signal storm never surfaces as a spurious error.
//   2. Deterministic fault injection: NetFault mirrors FaultFs's
//      one-shot-plan design. A test arms exactly one fault (short read,
//      EINTR burst, injected EIO, mid-frame disconnect, …); the next
//      matching operation consumes it; everything afterwards runs clean.
//      The fault matrix in tests/server_test.cc drives the whole frame
//      layer through these seams without ever touching a real flaky
//      network.

namespace fwdecay::server {

/// Outcome of a socket operation. kTimeout means the deadline expired
/// before the transfer completed; kClosed means the peer went away
/// (EOF, ECONNRESET, EPIPE); kError is anything else, with detail in
/// the out-param error string.
enum class IoStatus { kOk, kTimeout, kClosed, kError };

const char* IoStatusName(IoStatus s);

/// Where a one-shot network fault fires.
enum class NetFaultPoint {
  kNone,
  kShortRead,    // deliver at most `byte_limit` bytes once, then clean
  kReadEintr,    // next `times` reads fail with (simulated) EINTR
  kReadError,    // one read fails with a hard error (models EIO)
  kPeerClose,    // one read sees EOF mid-frame (peer disconnect)
  kShortWrite,   // accept at most `byte_limit` bytes once, then clean
  kWriteEintr,   // next `times` writes fail with (simulated) EINTR
  kWriteError,   // one write fails with a hard error
  kWriteReset,   // one write sees ECONNRESET (peer vanished)
};

/// One-shot fault plan, same shape as util/fault_fs.h's FaultPlan.
struct NetFaultPlan {
  NetFaultPoint point = NetFaultPoint::kNone;
  /// For kShortRead / kShortWrite: bytes allowed through (>= 1).
  std::size_t byte_limit = 1;
  /// For kReadEintr / kWriteEintr: how many consecutive interrupts to
  /// inject before the storm subsides (the retry loop must survive all
  /// of them within its deadline).
  int times = 1;
};

/// Process-wide injection point for socket faults. Disarmed by default;
/// tests arm it via ScopedNetFaultPlan. All methods are thread-safe.
class NetFault {
 public:
  static NetFault& Instance();

  void SetPlan(const NetFaultPlan& plan);
  void Clear();

  /// Faults consumed since process start (monotone; exported as the
  /// fwdecay_server_net_faults_injected_total counter as well).
  std::uint64_t faults_injected() const;

  // --- consumption points (called by the I/O wrappers) ---------------

  /// One-shot points (kReadError, kPeerClose, kWriteError, kWriteReset):
  /// true exactly once when the armed plan matches `point`.
  bool ConsumeOneShot(NetFaultPoint point);

  /// Truncation points (kShortRead, kShortWrite): true once, with the
  /// byte budget for the truncated transfer in *limit.
  bool ConsumeTruncation(NetFaultPoint point, std::size_t* limit);

  /// Retry points (kReadEintr, kWriteEintr): true `times` times in a
  /// row, then the plan disarms.
  bool ConsumeRetry(NetFaultPoint point);

 private:
  NetFault() = default;

  mutable Mutex mu_;
  NetFaultPlan plan_ FWDECAY_GUARDED_BY(mu_);
  std::uint64_t injected_ FWDECAY_GUARDED_BY(mu_) = 0;
};

/// RAII arming of one fault plan (clears any plan on exit).
class ScopedNetFaultPlan {
 public:
  explicit ScopedNetFaultPlan(const NetFaultPlan& plan) {
    NetFault::Instance().SetPlan(plan);
  }
  ~ScopedNetFaultPlan() { NetFault::Instance().Clear(); }

  ScopedNetFaultPlan(const ScopedNetFaultPlan&) = delete;
  ScopedNetFaultPlan& operator=(const ScopedNetFaultPlan&) = delete;
};

/// Move-only owner of one socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool ok() const { return fd_ >= 0; }

  void Close();

  /// shutdown(2) both directions without closing the descriptor: wakes
  /// any thread blocked in poll/recv on this socket (the reaper and
  /// graceful shutdown use this; Close() happens only after the owning
  /// thread has been joined).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Loopback TCP listener. Open with port 0 to let the kernel pick an
/// ephemeral port (tests and the smoke script read it back via port()).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool Open(std::uint16_t port, std::string* error);
  void Close();

  bool ok() const { return sock_.ok(); }
  std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms for one connection. kTimeout when none
  /// arrived (the accept loop uses short timeouts so it can observe the
  /// stop flag); kClosed when the listener was shut down.
  IoStatus AcceptOnce(int timeout_ms, Socket* out, std::string* error);

  /// Wakes a blocked AcceptOnce (graceful shutdown).
  void Shutdown() { sock_.ShutdownBoth(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port with a deadline.
IoStatus Connect(std::uint16_t port, int timeout_ms, Socket* out,
                 std::string* error);

/// Reads exactly n bytes before the deadline. Partial transfers are
/// reassembled; EINTR (real or injected) is retried against the same
/// deadline; kTimeout means fewer than n bytes arrived in time.
IoStatus RecvExactly(Socket& sock, void* buf, std::size_t n, int timeout_ms,
                     std::string* error);

/// Writes exactly n bytes before the deadline (partial sends resumed,
/// EINTR retried, SIGPIPE suppressed).
IoStatus SendExactly(Socket& sock, const void* data, std::size_t n,
                     int timeout_ms, std::string* error);

/// Reads and discards exactly n bytes (oversized-frame drain: the
/// connection stays synchronized so the server can answer with a
/// structured error instead of dropping the session).
IoStatus DiscardExactly(Socket& sock, std::size_t n, int timeout_ms,
                        std::string* error);

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_NET_H_
