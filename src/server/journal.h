#ifndef FWDECAY_SERVER_JOURNAL_H_
#define FWDECAY_SERVER_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dsms/batch.h"
#include "server/frame.h"
#include "server/tenant.h"
#include "util/bytes.h"

// fwdecayd's write-ahead journal (DESIGN.md §11).
//
// Restart-without-loss hinges on one rule: a batch is acknowledged only
// after its journal record is on disk (append + fsync through
// util/fault_fs.h, so every disk fault the test matrix can inject hits
// this path too). The journal is a sequence of segments named
// journal-<epoch>.fwj; a checkpoint seals the current segment and opens
// the next, and recovery replays segments from its snapshot's epoch
// forward, skipping records at or below the snapshot's watermark.
//
// Record framing inside a segment:
//
//   u32 payload_len | payload | u32 crc32c(payload)
//
// A torn tail — a partial record from a crash mid-append — fails the
// length or CRC check and is treated as a clean end of segment: the
// torn record was never acknowledged, so dropping it is exactly the
// contract. Payloads carry a type tag and a global sequence number, so
// replay is idempotent under the seq > watermark filter.

namespace fwdecay::server {

/// A record payload can carry one full ingest frame plus headroom.
inline constexpr std::size_t kMaxJournalRecordBytes = kMaxFrameBytes + 4096;

enum class JournalRecordType : std::uint8_t {
  kBatch = 1,     // one acknowledged packet batch
  kRegister = 2,  // a query registration (registry survives restarts)
  kTenant = 3,    // a tenant provisioned with its spec
};

/// One decoded record. Which fields are meaningful depends on `type`.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kBatch;
  std::uint64_t seq = 0;

  // kBatch
  dsms::PacketBatch batch{1};

  // kRegister
  std::uint64_t query_id = 0;
  std::string tenant;
  std::string name;
  std::string gsql;
  bool two_level = false;

  // kTenant
  TenantSpec spec;
};

// Record encoders. The returned bytes are the framed payload body (no
// length/CRC — JournalWriter::Append adds the frame).
std::vector<std::uint8_t> EncodeBatchRecord(std::uint64_t seq,
                                            const dsms::PacketBatch& batch);
std::vector<std::uint8_t> EncodeRegisterRecord(
    std::uint64_t seq, std::uint64_t query_id, const std::string& tenant,
    const std::string& name, const std::string& gsql, bool two_level);
std::vector<std::uint8_t> EncodeTenantRecord(std::uint64_t seq,
                                             const TenantSpec& spec);

/// Appends framed records to one segment file via FaultFs (append +
/// fsync; the first append also syncs the parent directory so the
/// segment's directory entry is durable).
class JournalWriter {
 public:
  explicit JournalWriter(std::string path) : path_(std::move(path)) {}

  /// Frames `payload` (length + CRC32C) and appends it durably.
  /// On failure the segment may hold a torn tail — which the reader
  /// treats as end-of-segment, matching "never acknowledged".
  bool Append(const std::vector<std::uint8_t>& payload, std::string* error);

  const std::string& path() const { return path_; }
  std::uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  std::string path_;
  std::uint64_t appended_bytes_ = 0;
};

/// Reads every intact record of one segment, in order. A torn or
/// corrupt tail sets *torn_tail and stops cleanly (ok = true): replay
/// continues with the next segment. A missing file is the caller's
/// case to handle (probe with FaultFs::FileExists first).
bool ReadJournalFile(const std::string& path,
                     std::vector<JournalRecord>* records, bool* torn_tail,
                     std::string* error);

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_JOURNAL_H_
