#include "server/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "util/fault_fs.h"

namespace fwdecay::server {

namespace {

constexpr char kManifestMagic[] = "FWDCUR1";

// Structural limits for a CURRENT manifest. The manifest is
// attacker-reachable bytes (anything that can write the data dir), and
// `active` bounds recovery's segment-probe loop — without a span cap a
// hostile `active 18446744073709551615` turns recovery into a ~2^64
// iteration scan. The epoch ceiling also keeps `active + 1` from
// wrapping. A legitimate deployment advances `active` once per
// incarnation and `floor` rises with snapshot retention, so these caps
// are orders of magnitude above any reachable state.
constexpr std::uint64_t kMaxManifestEpoch = std::uint64_t{1} << 48;
constexpr std::uint64_t kMaxManifestSpan = std::uint64_t{1} << 20;
constexpr std::size_t kMaxManifestSnaps = 1024;

std::string FormatEpoch(const char* stem, std::uint64_t epoch,
                        const char* ext) {
  char buf[64];
  (void)std::snprintf(buf, sizeof(buf), "%s-%llu%s", stem,
                      static_cast<unsigned long long>(epoch), ext);
  return buf;
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

SnapshotManager::SnapshotManager(std::string dir, std::size_t retain)
    : dir_(std::move(dir)), retain_(std::max<std::size_t>(retain, 1)) {}

std::string SnapshotManager::SnapPath(std::uint64_t epoch) const {
  return dir_ + "/" + FormatEpoch("snap", epoch, ".fws");
}

std::string SnapshotManager::JournalPath(std::uint64_t epoch) const {
  return dir_ + "/" + FormatEpoch("journal", epoch, ".fwj");
}

std::string SnapshotManager::CurrentPath() const { return dir_ + "/CURRENT"; }

bool SnapshotManager::ReadManifest(Manifest* out, std::string* error) const {
  *out = Manifest{};
  auto& fs = FaultFs::Instance();
  if (!fs.FileExists(CurrentPath())) return true;  // fresh directory

  std::vector<std::uint8_t> bytes;
  if (!fs.ReadFile(CurrentPath(), &bytes, error)) return false;
  const std::string text(bytes.begin(), bytes.end());

  Manifest m;
  bool saw_magic = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != kManifestMagic) {
        *error = "CURRENT manifest has a bad magic line";
        return false;
      }
      saw_magic = true;
      continue;
    }
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      *error = "CURRENT manifest has a malformed line: " + line;
      return false;
    }
    const std::string key = line.substr(0, space);
    std::uint64_t value = 0;
    if (!ParseU64(line.substr(space + 1), &value)) {
      *error = "CURRENT manifest has a malformed value: " + line;
      return false;
    }
    if (key == "active") {
      m.active = value;
    } else if (key == "floor") {
      m.floor = value;
    } else if (key == "snap") {
      if (m.snaps.size() >= kMaxManifestSnaps) {
        *error = "CURRENT manifest lists more than " +
                 std::to_string(kMaxManifestSnaps) + " snapshots";
        return false;
      }
      m.snaps.push_back(value);
    } else {
      *error = "CURRENT manifest has an unknown key: " + key;
      return false;
    }
  }
  if (!saw_magic) {
    *error = "CURRENT manifest is empty";
    return false;
  }

  // Structural validation before anything is published to the caller:
  // every field below feeds recovery's segment-probe loop or epoch
  // arithmetic, so a parsed-but-hostile manifest must be rejected as
  // loudly as a malformed one.
  if (m.active > kMaxManifestEpoch || m.floor > kMaxManifestEpoch) {
    *error = "CURRENT manifest epoch exceeds the structural cap";
    return false;
  }
  if (m.floor > m.active) {
    *error = "CURRENT manifest floor " + std::to_string(m.floor) +
             " is above active " + std::to_string(m.active);
    return false;
  }
  if (m.active - m.floor > kMaxManifestSpan) {
    *error = "CURRENT manifest replay span " +
             std::to_string(m.active - m.floor) +
             " exceeds the structural cap";
    return false;
  }
  for (std::uint64_t epoch : m.snaps) {
    if (epoch < m.floor || epoch > m.active) {
      *error = "CURRENT manifest snapshot epoch " +
               std::to_string(epoch) + " is outside [floor, active]";
      return false;
    }
  }
  *out = std::move(m);
  return true;
}

bool SnapshotManager::WriteManifest(const Manifest& m,
                                    std::string* error) const {
  std::string text(kManifestMagic);
  text.push_back('\n');
  text += "active " + std::to_string(m.active) + "\n";
  text += "floor " + std::to_string(m.floor) + "\n";
  for (std::uint64_t epoch : m.snaps) {
    text += "snap " + std::to_string(epoch) + "\n";
  }
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  return FaultFs::Instance().AtomicWriteFile(CurrentPath(), bytes, error);
}

bool SnapshotManager::PublishSnapshot(std::uint64_t epoch,
                                      const std::vector<std::uint8_t>& image,
                                      Manifest* m, std::string* error) const {
  auto& fs = FaultFs::Instance();
  if (!fs.AtomicWriteFile(SnapPath(epoch), image, error)) return false;

  Manifest next = *m;
  next.snaps.insert(next.snaps.begin(), epoch);
  if (next.snaps.size() > retain_) next.snaps.resize(retain_);
  // The floor rises to the oldest retained snapshot: recovery can fall
  // back at most that far, so journal segments below it are dead.
  const std::uint64_t old_floor = m->floor;
  next.floor = std::max(old_floor, next.snaps.back());

  // Manifest first, GC second: if the process dies between the two, a
  // few sub-floor files linger until a later publish — recovery never
  // reads below the floor, so orphans are waste, not corruption.
  if (!WriteManifest(next, error)) return false;
  *m = next;

  for (std::uint64_t e = old_floor; e < next.floor; ++e) {
    std::string gc_error;
    // Best-effort: RemoveFile treats a missing file as success, and a
    // failed unlink only delays reclamation until the next publish.
    (void)fs.RemoveFile(SnapPath(e), &gc_error);
    (void)fs.RemoveFile(JournalPath(e), &gc_error);
  }
  return true;
}

}  // namespace fwdecay::server
