#include "server/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "util/fault_fs.h"

namespace fwdecay::server {

namespace {

constexpr char kManifestMagic[] = "FWDCUR1";

std::string FormatEpoch(const char* stem, std::uint64_t epoch,
                        const char* ext) {
  char buf[64];
  (void)std::snprintf(buf, sizeof(buf), "%s-%llu%s", stem,
                      static_cast<unsigned long long>(epoch), ext);
  return buf;
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

SnapshotManager::SnapshotManager(std::string dir, std::size_t retain)
    : dir_(std::move(dir)), retain_(std::max<std::size_t>(retain, 1)) {}

std::string SnapshotManager::SnapPath(std::uint64_t epoch) const {
  return dir_ + "/" + FormatEpoch("snap", epoch, ".fws");
}

std::string SnapshotManager::JournalPath(std::uint64_t epoch) const {
  return dir_ + "/" + FormatEpoch("journal", epoch, ".fwj");
}

std::string SnapshotManager::CurrentPath() const { return dir_ + "/CURRENT"; }

bool SnapshotManager::ReadManifest(Manifest* out, std::string* error) const {
  *out = Manifest{};
  auto& fs = FaultFs::Instance();
  if (!fs.FileExists(CurrentPath())) return true;  // fresh directory

  std::vector<std::uint8_t> bytes;
  if (!fs.ReadFile(CurrentPath(), &bytes, error)) return false;
  const std::string text(bytes.begin(), bytes.end());

  bool saw_magic = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != kManifestMagic) {
        *error = "CURRENT manifest has a bad magic line";
        return false;
      }
      saw_magic = true;
      continue;
    }
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      *error = "CURRENT manifest has a malformed line: " + line;
      return false;
    }
    const std::string key = line.substr(0, space);
    std::uint64_t value = 0;
    if (!ParseU64(line.substr(space + 1), &value)) {
      *error = "CURRENT manifest has a malformed value: " + line;
      return false;
    }
    if (key == "active") {
      out->active = value;
    } else if (key == "floor") {
      out->floor = value;
    } else if (key == "snap") {
      out->snaps.push_back(value);
    } else {
      *error = "CURRENT manifest has an unknown key: " + key;
      return false;
    }
  }
  if (!saw_magic) {
    *error = "CURRENT manifest is empty";
    return false;
  }
  return true;
}

bool SnapshotManager::WriteManifest(const Manifest& m,
                                    std::string* error) const {
  std::string text(kManifestMagic);
  text.push_back('\n');
  text += "active " + std::to_string(m.active) + "\n";
  text += "floor " + std::to_string(m.floor) + "\n";
  for (std::uint64_t epoch : m.snaps) {
    text += "snap " + std::to_string(epoch) + "\n";
  }
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  return FaultFs::Instance().AtomicWriteFile(CurrentPath(), bytes, error);
}

bool SnapshotManager::PublishSnapshot(std::uint64_t epoch,
                                      const std::vector<std::uint8_t>& image,
                                      Manifest* m, std::string* error) const {
  auto& fs = FaultFs::Instance();
  if (!fs.AtomicWriteFile(SnapPath(epoch), image, error)) return false;

  Manifest next = *m;
  next.snaps.insert(next.snaps.begin(), epoch);
  if (next.snaps.size() > retain_) next.snaps.resize(retain_);
  // The floor rises to the oldest retained snapshot: recovery can fall
  // back at most that far, so journal segments below it are dead.
  const std::uint64_t old_floor = m->floor;
  next.floor = std::max(old_floor, next.snaps.back());

  // Manifest first, GC second: if the process dies between the two, a
  // few sub-floor files linger until a later publish — recovery never
  // reads below the floor, so orphans are waste, not corruption.
  if (!WriteManifest(next, error)) return false;
  *m = next;

  for (std::uint64_t e = old_floor; e < next.floor; ++e) {
    std::string gc_error;
    // Best-effort: RemoveFile treats a missing file as success, and a
    // failed unlink only delays reclamation until the next publish.
    (void)fs.RemoveFile(SnapPath(e), &gc_error);
    (void)fs.RemoveFile(JournalPath(e), &gc_error);
  }
  return true;
}

}  // namespace fwdecay::server
