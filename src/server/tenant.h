#ifndef FWDECAY_SERVER_TENANT_H_
#define FWDECAY_SERVER_TENANT_H_

#include <cstddef>
#include <string>

#include "util/bytes.h"

// Multi-tenant admission vocabulary for fwdecayd (DESIGN.md §11).
//
// A tenant is the unit of isolation in the shared-ingest model: every
// registered continuous query belongs to one tenant, and the tenant's
// spec caps how much state its queries may hold (`max_groups`, enforced
// by the engine's min-forward-weight overload shedding) and how many
// plans it may register (`max_queries`). The decay parameters live here
// too: forward decay lets every tenant pick its own alpha and landmark
// without any rescaling coupling between tenants — weights are always
// relative to the tenant's own L.

namespace fwdecay::server {

/// Per-tenant policy: decay parameters plus admission quotas.
struct TenantSpec {
  std::string name;

  /// Exponential forward-decay rate used for this tenant's overload
  /// shedding weights (engine OverloadPolicy::decay_alpha).
  double decay_alpha = 0.05;

  /// Forward-decay landmark L for the same weights. Only the weight
  /// *scale* depends on it, so 0 (stream epoch) is always safe.
  double landmark = 0.0;

  /// Group budget per query: above this the engine evicts the group
  /// with the smallest forward-decayed weight instead of growing.
  std::size_t max_groups = 4096;

  /// Registration quota: queries this tenant may hold at once.
  std::size_t max_queries = 8;
};

inline constexpr std::size_t kMaxTenantNameBytes = 64;
inline constexpr std::size_t kMaxQueryNameBytes = 128;

/// Tenant and query names share one conservative charset so they can be
/// embedded verbatim in metric labels and file-system-free manifests:
/// [a-z0-9_-], 1..max bytes, must start with a letter or digit.
inline bool ValidIdentifier(const std::string& name, std::size_t max_bytes) {
  if (name.empty() || name.size() > max_bytes) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (alnum) continue;
    if ((c == '_' || c == '-') && i > 0) continue;
    return false;
  }
  return true;
}

inline bool ValidTenantName(const std::string& name) {
  return ValidIdentifier(name, kMaxTenantNameBytes);
}

inline bool ValidQueryName(const std::string& name) {
  return ValidIdentifier(name, kMaxQueryNameBytes);
}

/// Wire/journal/snapshot codec for a TenantSpec. One encoding shared by
/// the journal's tenant-provision records and the server snapshot body,
/// so recovery replays both through the same decoder.
inline void EncodeTenantSpec(const TenantSpec& spec, ByteWriter* w) {
  w->WriteString(spec.name);
  w->WriteDouble(spec.decay_alpha);
  w->WriteDouble(spec.landmark);
  w->WriteU64(spec.max_groups);
  w->WriteU64(spec.max_queries);
}

inline bool DecodeTenantSpec(ByteReader* r, TenantSpec* spec) {
  std::uint64_t max_groups = 0;
  std::uint64_t max_queries = 0;
  if (!r->ReadString(&spec->name) || !r->ReadDouble(&spec->decay_alpha) ||
      !r->ReadDouble(&spec->landmark) || !r->ReadU64(&max_groups) ||
      !r->ReadU64(&max_queries)) {
    return false;
  }
  if (!ValidTenantName(spec->name)) return false;
  spec->max_groups = static_cast<std::size_t>(max_groups);
  spec->max_queries = static_cast<std::size_t>(max_queries);
  return true;
}

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_TENANT_H_
