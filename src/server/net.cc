#include "server/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <algorithm>

#include "util/metrics.h"
#include "util/timer.h"

namespace fwdecay::server {

namespace {

// Resolved once; the registry returns stable pointers for the process
// lifetime, so these handles are safe to cache.
struct NetMetrics {
  metrics::Counter* faults_injected;
  metrics::Counter* eintr_retries;

  static NetMetrics& Get() {
    auto& reg = metrics::MetricsRegistry::Instance();
    static NetMetrics m{
        reg.GetCounter("fwdecay_server_net_faults_injected_total",
                       "Socket faults injected by the NetFault test shim"),
        reg.GetCounter(
            "fwdecay_server_net_eintr_retries_total",
            "Socket operations retried after EINTR (real or injected)"),
    };
    return m;
  }
};

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Milliseconds left before a deadline that started `elapsed_s` ago.
/// Negative budgets clamp to 0 so poll() returns immediately.
int RemainingMs(double elapsed_s, int timeout_ms) {
  const double left = static_cast<double>(timeout_ms) - elapsed_s * 1000.0;
  if (left <= 0.0) return 0;
  if (left > static_cast<double>(timeout_ms)) return timeout_ms;
  return static_cast<int>(left) + 1;  // round up: never undershoot
}

/// poll() for one event with EINTR retry against the shared deadline.
/// Returns kOk when the event is ready, kTimeout when the deadline
/// expired, kError otherwise.
IoStatus PollOne(int fd, short events, const Timer& timer, int timeout_ms,
                 std::string* error) {
  for (;;) {
    const int left = RemainingMs(timer.ElapsedSeconds(), timeout_ms);
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, left);
    if (rc > 0) return IoStatus::kOk;
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) {
      NetMetrics::Get().eintr_retries->Increment();
      continue;
    }
    *error = ErrnoMessage("poll");
    return IoStatus::kError;
  }
}

}  // namespace

const char* IoStatusName(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kClosed:
      return "closed";
    case IoStatus::kError:
      return "error";
  }
  return "unknown";
}

// --------------------------------------------------------------------
// NetFault

NetFault& NetFault::Instance() {
  static NetFault instance;
  return instance;
}

void NetFault::SetPlan(const NetFaultPlan& plan) {
  MutexLock lock(mu_);
  plan_ = plan;
}

void NetFault::Clear() {
  MutexLock lock(mu_);
  plan_ = NetFaultPlan{};
}

std::uint64_t NetFault::faults_injected() const {
  MutexLock lock(mu_);
  return injected_;
}

bool NetFault::ConsumeOneShot(NetFaultPoint point) {
  {
    MutexLock lock(mu_);
    if (plan_.point != point) return false;
    plan_ = NetFaultPlan{};
    ++injected_;
  }
  NetMetrics::Get().faults_injected->Increment();
  return true;
}

bool NetFault::ConsumeTruncation(NetFaultPoint point, std::size_t* limit) {
  {
    MutexLock lock(mu_);
    if (plan_.point != point) return false;
    *limit = std::max<std::size_t>(plan_.byte_limit, 1);
    plan_ = NetFaultPlan{};
    ++injected_;
  }
  NetMetrics::Get().faults_injected->Increment();
  return true;
}

bool NetFault::ConsumeRetry(NetFaultPoint point) {
  {
    MutexLock lock(mu_);
    if (plan_.point != point || plan_.times <= 0) return false;
    if (--plan_.times == 0) plan_ = NetFaultPlan{};
    ++injected_;
  }
  NetMetrics::Get().faults_injected->Increment();
  return true;
}

// --------------------------------------------------------------------
// Socket

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    // close(2) on Linux releases the descriptor even when interrupted;
    // retrying EINTR here would risk double-closing a reused fd.
    (void)::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

// --------------------------------------------------------------------
// Listener

bool Listener::Open(std::uint16_t port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.ok()) {
    *error = ErrnoMessage("socket");
    return false;
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = ErrnoMessage("bind");
    return false;
  }
  if (::listen(sock.fd(), 64) != 0) {
    *error = ErrnoMessage("listen");
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    *error = ErrnoMessage("getsockname");
    return false;
  }
  port_ = ntohs(addr.sin_port);
  sock_ = std::move(sock);
  return true;
}

void Listener::Close() {
  sock_.Close();
  port_ = 0;
}

IoStatus Listener::AcceptOnce(int timeout_ms, Socket* out,
                              std::string* error) {
  if (!sock_.ok()) {
    *error = "listener is closed";
    return IoStatus::kClosed;
  }
  Timer timer;
  const IoStatus ready = PollOne(sock_.fd(), POLLIN, timer, timeout_ms, error);
  if (ready != IoStatus::kOk) return ready;
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      *out = Socket(fd);
      return IoStatus::kOk;
    }
    if (errno == EINTR) {
      NetMetrics::Get().eintr_retries->Increment();
      continue;
    }
    if (errno == EINVAL || errno == EBADF) {
      // Listener shut down under us: clean stop, not an error.
      return IoStatus::kClosed;
    }
    *error = ErrnoMessage("accept");
    return IoStatus::kError;
  }
}

// --------------------------------------------------------------------
// Connect

IoStatus Connect(std::uint16_t port, int timeout_ms, Socket* out,
                 std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.ok()) {
    *error = ErrnoMessage("socket");
    return IoStatus::kError;
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  Timer timer;
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) {
      // POSIX: an interrupted connect completes asynchronously; wait
      // for writability and check SO_ERROR rather than re-connecting.
      NetMetrics::Get().eintr_retries->Increment();
      const IoStatus ready =
          PollOne(sock.fd(), POLLOUT, timer, timeout_ms, error);
      if (ready != IoStatus::kOk) return ready;
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
          soerr != 0) {
        errno = soerr != 0 ? soerr : errno;
        *error = ErrnoMessage("connect");
        return IoStatus::kError;
      }
      break;
    }
    if (errno == ECONNREFUSED) {
      *error = ErrnoMessage("connect");
      return IoStatus::kClosed;
    }
    *error = ErrnoMessage("connect");
    return IoStatus::kError;
  }
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(sock);
  return IoStatus::kOk;
}

// --------------------------------------------------------------------
// Deadline transfers

IoStatus RecvExactly(Socket& sock, void* buf, std::size_t n, int timeout_ms,
                     std::string* error) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  Timer timer;
  NetFault& fault = NetFault::Instance();
  while (got < n) {
    if (fault.ConsumeOneShot(NetFaultPoint::kReadError)) {
      *error = "injected read error (EIO)";
      return IoStatus::kError;
    }
    if (fault.ConsumeOneShot(NetFaultPoint::kPeerClose)) {
      *error = "injected mid-frame disconnect";
      return IoStatus::kClosed;
    }
    if (fault.ConsumeRetry(NetFaultPoint::kReadEintr)) {
      NetMetrics::Get().eintr_retries->Increment();
      continue;  // a real EINTR would also charge the same deadline
    }
    const IoStatus ready =
        PollOne(sock.fd(), POLLIN, timer, timeout_ms, error);
    if (ready != IoStatus::kOk) return ready;

    std::size_t want = n - got;
    std::size_t limit = 0;
    if (fault.ConsumeTruncation(NetFaultPoint::kShortRead, &limit)) {
      want = std::min(want, limit);
    }
    const ssize_t rc = ::recv(sock.fd(), out + got, want, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      *error = got == 0 ? "connection closed"
                        : "connection closed mid-transfer";
      return IoStatus::kClosed;
    }
    if (errno == EINTR) {
      NetMetrics::Get().eintr_retries->Increment();
      continue;
    }
    if (errno == ECONNRESET) {
      *error = ErrnoMessage("recv");
      return IoStatus::kClosed;
    }
    *error = ErrnoMessage("recv");
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus SendExactly(Socket& sock, const void* data, std::size_t n,
                     int timeout_ms, std::string* error) {
  const auto* in = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  Timer timer;
  NetFault& fault = NetFault::Instance();
  while (sent < n) {
    if (fault.ConsumeOneShot(NetFaultPoint::kWriteError)) {
      *error = "injected write error";
      return IoStatus::kError;
    }
    if (fault.ConsumeOneShot(NetFaultPoint::kWriteReset)) {
      *error = "injected connection reset";
      return IoStatus::kClosed;
    }
    if (fault.ConsumeRetry(NetFaultPoint::kWriteEintr)) {
      NetMetrics::Get().eintr_retries->Increment();
      continue;
    }
    const IoStatus ready =
        PollOne(sock.fd(), POLLOUT, timer, timeout_ms, error);
    if (ready != IoStatus::kOk) return ready;

    std::size_t want = n - sent;
    std::size_t limit = 0;
    if (fault.ConsumeTruncation(NetFaultPoint::kShortWrite, &limit)) {
      want = std::min(want, limit);
    }
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t rc = ::send(sock.fd(), in + sent, want, MSG_NOSIGNAL);
    if (rc >= 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (errno == EINTR) {
      NetMetrics::Get().eintr_retries->Increment();
      continue;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      *error = ErrnoMessage("send");
      return IoStatus::kClosed;
    }
    *error = ErrnoMessage("send");
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus DiscardExactly(Socket& sock, std::size_t n, int timeout_ms,
                        std::string* error) {
  std::uint8_t sink[4096];
  Timer timer;
  std::size_t left = n;
  while (left > 0) {
    const std::size_t chunk = std::min(left, sizeof(sink));
    const int budget = RemainingMs(timer.ElapsedSeconds(), timeout_ms);
    if (budget == 0) return IoStatus::kTimeout;
    const IoStatus s = RecvExactly(sock, sink, chunk, budget, error);
    if (s != IoStatus::kOk) return s;
    left -= chunk;
  }
  return IoStatus::kOk;
}

}  // namespace fwdecay::server
