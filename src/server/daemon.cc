#include "server/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/crc32c.h"
#include "util/fault_fs.h"
#include "util/timer.h"

namespace fwdecay::server {

namespace {

// FWDSRV01 server snapshot: 8-byte magic, u32 version, u32 CRC32C over
// the body, u64 body length, body. The body embeds one FWDSNAP1 engine
// image per registered query, so engine-level validation (fingerprint,
// CRC) still runs on every restore.
constexpr char kServerSnapMagic[8] = {'F', 'W', 'D', 'S', 'R', 'V', '0', '1'};
constexpr std::uint32_t kServerSnapVersion = 1;

// Decode caps (hostile-input discipline: a corrupt count must never
// drive an allocation).
constexpr std::size_t kMaxSnapshotTenants = 4096;
constexpr std::size_t kMaxSnapshotQueries = 65536;

// How long a connection thread waits for the apply thread to make its
// batch durable before giving up on the ack. Generous: covers a
// checkpoint stall, but not a wedged disk forever.
constexpr int kAckWaitMs = 60'000;

// HTTP request handling limits for the /metrics endpoint.
constexpr std::size_t kMaxHttpRequestBytes = 4096;
constexpr int kHttpTimeoutMs = 2000;

std::string LabelForTenant(const std::string& name) {
  return "tenant=\"" + name + "\"";
}

}  // namespace

// --------------------------------------------------------------------
// IngestQueue

IngestQueue::IngestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool IngestQueue::TryPush(std::unique_ptr<PendingBatch> item) {
  {
    MutexLock lock(mu_);
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
  }
  ready_.release();
  return true;
}

std::unique_ptr<PendingBatch> IngestQueue::PopWait(int timeout_ms) {
  if (!ready_.try_acquire_for(std::chrono::milliseconds(timeout_ms))) {
    return nullptr;
  }
  MutexLock lock(mu_);
  // The semaphore count never exceeds the number of queued items, so
  // a successful acquire guarantees one is present.
  std::unique_ptr<PendingBatch> item = std::move(items_.front());
  items_.pop_front();
  return item;
}

std::size_t IngestQueue::depth() const {
  MutexLock lock(mu_);
  return items_.size();
}

// --------------------------------------------------------------------
// Daemon: construction, metrics

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      snaps_(options_.data_dir, options_.snapshot_retain),
      queue_(std::make_unique<IngestQueue>(options_.queue_capacity)) {
  auto& reg = metrics::MetricsRegistry::Instance();
  m_.connections_total = reg.GetCounter(
      "fwdecay_server_connections_total", "Client connections accepted.");
  m_.connections_active = reg.GetGauge("fwdecay_server_connections_active",
                                       "Client connections currently open.");
  m_.connections_reaped =
      reg.GetCounter("fwdecay_server_connections_reaped_total",
                     "Connections closed by the idle reaper.");
  m_.frames_total = reg.GetCounter("fwdecay_server_frames_total",
                                   "Well-formed frames received.");
  m_.frame_errors = reg.GetCounter(
      "fwdecay_server_frame_errors_total",
      "Frames refused (oversized, bad magic, transport errors).");
  m_.batches_acked =
      reg.GetCounter("fwdecay_server_batches_acked_total",
                     "Ingest batches journaled, applied, and acknowledged.");
  m_.backpressure = reg.GetCounter(
      "fwdecay_server_backpressure_total",
      "Ingest batches refused with kBusy because the bounded queue "
      "was full.");
  m_.journal_failures =
      reg.GetCounter("fwdecay_server_journal_failures_total",
                     "Journal appends that failed (batch not acknowledged).");
  m_.journal_bytes = reg.GetCounter("fwdecay_server_journal_bytes_total",
                                    "Bytes appended to journal segments.");
  m_.queue_depth = reg.GetGauge("fwdecay_server_queue_depth",
                                "Ingest queue depth after the last event.");
  m_.checkpoints = reg.GetCounter("fwdecay_server_checkpoints_total",
                                  "Server snapshots published.");
  m_.checkpoint_failures =
      reg.GetCounter("fwdecay_server_checkpoint_failures_total",
                     "Checkpoint attempts that failed.");
  m_.recoveries = reg.GetCounter(
      "fwdecay_server_recoveries_total",
      "Startups that recovered state from a prior incarnation.");
  m_.recovery_fallbacks = reg.GetCounter(
      "fwdecay_server_recovery_fallbacks_total",
      "Snapshots skipped during recovery (corrupt; fell back to older).");
  m_.replayed_batches =
      reg.GetCounter("fwdecay_server_replayed_batches_total",
                     "Journaled batches re-applied during recovery.");
  m_.registered_queries = reg.GetGauge("fwdecay_server_registered_queries",
                                       "Continuous queries registered.");
  m_.tenants =
      reg.GetGauge("fwdecay_server_tenants", "Tenants provisioned.");
  m_.polls = reg.GetCounter("fwdecay_server_polls_total",
                            "Non-destructive result polls served.");
  m_.ingest_rate = reg.GetDecayedRate(
      "fwdecay_server_ingest_rate",
      "Forward-decayed acknowledged-packet rate (events/s; alpha=0.1).",
      /*alpha=*/0.1);
  m_.apply_ns = reg.GetReservoir(
      "fwdecay_server_apply_ns",
      "Journal+fanout wall time per acknowledged batch, ns (decayed "
      "reservoir).",
      /*k=*/256, /*alpha=*/0.015);
}

Daemon::~Daemon() { Stop(); }

// --------------------------------------------------------------------
// Recovery

void Daemon::ResetEngineStateLocked() {
  queries_.clear();
  tenants_.clear();
  global_seq_ = 0;
  batches_acked_ = 0;
  next_query_id_ = 1;
}

bool Daemon::InstallQueryLocked(std::uint64_t id, const std::string& tenant,
                                const std::string& name,
                                const std::string& gsql, bool two_level,
                                std::string* error) {
  dsms::CompiledQuery::Options qopts;
  qopts.two_level = two_level;
  auto plan = dsms::CompiledQuery::Compile(gsql, error, qopts);
  if (plan == nullptr) return false;

  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    // A register record can only follow the tenant's provision record,
    // but tolerate a gap (e.g. a snapshot from an older layout) by
    // installing the default spec under this name.
    TenantSpec spec = options_.tenant_defaults;
    spec.name = tenant;
    ErrCode code = ErrCode::kNone;
    std::string msg;
    if (ProvisionTenantLocked(spec, /*journal=*/false, &code, &msg) ==
        nullptr) {
      *error = "cannot provision tenant '" + tenant + "': " + msg;
      return false;
    }
    it = tenants_.find(tenant);
  }

  auto entry = std::make_unique<QueryEntry>();
  entry->id = id;
  entry->tenant = tenant;
  entry->name = name;
  entry->gsql = gsql;
  entry->two_level = two_level;
  entry->plan = std::move(plan);
  entry->exec = entry->plan->NewExecution();

  dsms::OverloadPolicy policy;
  policy.max_groups = it->second.spec.max_groups;
  policy.decay_alpha = it->second.spec.decay_alpha;
  policy.landmark = it->second.spec.landmark;
  entry->exec->SetOverloadPolicy(policy);

  queries_.push_back(std::move(entry));
  it->second.query_count += 1;
  if (id >= next_query_id_) next_query_id_ = id + 1;
  m_.registered_queries->Set(static_cast<double>(queries_.size()));
  return true;
}

bool Daemon::LoadServerSnapshotLocked(std::uint64_t epoch,
                                      std::string* error) {
  std::vector<std::uint8_t> bytes;
  if (!FaultFs::Instance().ReadFile(snaps_.SnapPath(epoch), &bytes, error)) {
    return false;
  }
  ByteReader r(bytes.data(), bytes.size());
  char magic[sizeof(kServerSnapMagic)];
  if (r.Remaining() < sizeof(magic)) {
    *error = "server snapshot too short for its header";
    return false;
  }
  ByteReader magic_reader(nullptr, 0);
  (void)r.ReadSubReader(sizeof(magic), &magic_reader);
  std::memcpy(magic, bytes.data(), sizeof(magic));
  if (std::memcmp(magic, kServerSnapMagic, sizeof(magic)) != 0) {
    *error = "server snapshot has a bad magic";
    return false;
  }
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::uint64_t body_len = 0;
  if (!r.ReadU32(&version) || !r.ReadU32(&crc) || !r.ReadU64(&body_len)) {
    *error = "server snapshot header is truncated";
    return false;
  }
  if (version != kServerSnapVersion) {
    *error = "server snapshot version " + std::to_string(version) +
             " is not supported";
    return false;
  }
  if (body_len != r.Remaining()) {
    *error = "server snapshot body length does not match the file";
    return false;
  }
  const std::uint8_t* body = bytes.data() + (bytes.size() - r.Remaining());
  if (Crc32c(body, static_cast<std::size_t>(body_len)) != crc) {
    *error = "server snapshot failed its CRC32C check";
    return false;
  }

  ResetEngineStateLocked();
  std::uint64_t watermark = 0;
  std::uint64_t acked = 0;
  std::uint64_t next_id = 0;
  std::uint32_t ntenants = 0;
  if (!r.ReadU64(&watermark) || !r.ReadU64(&acked) || !r.ReadU64(&next_id) ||
      !r.ReadU32(&ntenants) || ntenants > kMaxSnapshotTenants) {
    *error = "server snapshot body is corrupt (prologue)";
    return false;
  }
  for (std::uint32_t i = 0; i < ntenants; ++i) {
    TenantSpec spec;
    if (!DecodeTenantSpec(&r, &spec)) {
      *error = "server snapshot body is corrupt (tenant " +
               std::to_string(i) + ")";
      return false;
    }
    ErrCode code = ErrCode::kNone;
    std::string msg;
    if (ProvisionTenantLocked(spec, /*journal=*/false, &code, &msg) ==
        nullptr) {
      *error = "snapshot tenant '" + spec.name + "' rejected: " + msg;
      return false;
    }
  }
  std::uint32_t nqueries = 0;
  if (!r.ReadU32(&nqueries) || nqueries > kMaxSnapshotQueries) {
    *error = "server snapshot body is corrupt (query count)";
    return false;
  }
  for (std::uint32_t i = 0; i < nqueries; ++i) {
    std::uint64_t id = 0;
    std::string tenant;
    std::string name;
    std::string gsql;
    std::uint8_t two = 0;
    std::uint64_t image_len = 0;
    if (!r.ReadU64(&id) || !r.ReadString(&tenant) || !r.ReadString(&name) ||
        !r.ReadString(&gsql) || !r.ReadU8(&two) || !r.ReadU64(&image_len) ||
        image_len > r.Remaining()) {
      *error =
          "server snapshot body is corrupt (query " + std::to_string(i) + ")";
      return false;
    }
    const std::uint8_t* image = bytes.data() + (bytes.size() - r.Remaining());
    ByteReader skipped(nullptr, 0);
    (void)r.ReadSubReader(static_cast<std::size_t>(image_len), &skipped);
    if (!InstallQueryLocked(id, tenant, name, gsql, two != 0, error)) {
      return false;
    }
    if (!queries_.back()->exec->RestoreBytes(
            image, static_cast<std::size_t>(image_len), error)) {
      return false;
    }
  }
  if (!r.Exhausted()) {
    *error = "server snapshot has trailing bytes";
    return false;
  }
  global_seq_ = watermark;
  batches_acked_ = acked;
  if (next_id >= next_query_id_) next_query_id_ = next_id;
  return true;
}

bool Daemon::ReplaySegmentsLocked(std::uint64_t from_epoch,
                                  std::uint64_t to_epoch,
                                  std::string* error) {
  auto& fs = FaultFs::Instance();
  for (std::uint64_t e = from_epoch; e <= to_epoch; ++e) {
    const std::string path = snaps_.JournalPath(e);
    // A missing segment inside the range is legal: no record was ever
    // appended during that epoch (the file is created lazily).
    if (!fs.FileExists(path)) continue;
    std::vector<JournalRecord> records;
    bool torn = false;
    if (!ReadJournalFile(path, &records, &torn, error)) return false;
    for (JournalRecord& rec : records) {
      // Watermark filter: snapshots already cover these records.
      if (rec.seq <= global_seq_) continue;
      switch (rec.type) {
        case JournalRecordType::kBatch:
          FanOutLocked(rec.batch);
          batches_acked_ += 1;
          m_.replayed_batches->Increment();
          break;
        case JournalRecordType::kRegister:
          if (!InstallQueryLocked(rec.query_id, rec.tenant, rec.name,
                                  rec.gsql, rec.two_level, error)) {
            return false;
          }
          break;
        case JournalRecordType::kTenant: {
          ErrCode code = ErrCode::kNone;
          std::string msg;
          if (ProvisionTenantLocked(rec.spec, /*journal=*/false, &code,
                                    &msg) == nullptr) {
            *error = "journal tenant record rejected: " + msg;
            return false;
          }
          break;
        }
      }
      global_seq_ = rec.seq;
    }
    // A torn tail is a clean end of segment: the torn record was never
    // acknowledged, so dropping it is the durability contract.
  }
  return true;
}

bool Daemon::RecoverLocked(std::string* error) {
  auto& fs = FaultFs::Instance();
  if (!fs.EnsureDir(options_.data_dir, error)) return false;
  if (!snaps_.ReadManifest(&manifest_, error)) return false;

  const bool prior_incarnation =
      manifest_.active > 0 || !manifest_.snaps.empty() ||
      fs.FileExists(snaps_.JournalPath(0));

  std::uint64_t replay_from = manifest_.floor;
  bool snapshot_loaded = false;
  for (std::uint64_t epoch : manifest_.snaps) {
    std::string snap_error;
    if (LoadServerSnapshotLocked(epoch, &snap_error)) {
      snapshot_loaded = true;
      replay_from = epoch;
      break;
    }
    // Corrupt or unreadable: fall back to the previous rotation.
    m_.recovery_fallbacks->Increment();
    ResetEngineStateLocked();
  }
  if (!snapshot_loaded && !manifest_.snaps.empty() && manifest_.floor > 0) {
    // Every retained snapshot failed and the journal chain below the
    // floor is gone: replay-from-scratch is impossible. Refusing beats
    // silently serving an empty registry over acknowledged data.
    *error = "no retained snapshot is readable and the journal floor is " +
             std::to_string(manifest_.floor);
    return false;
  }

  if (!ReplaySegmentsLocked(replay_from, manifest_.active, error)) {
    return false;
  }

  // New incarnation, new segment: the previous segment may end in a
  // torn record, and appending after a torn tail would hide everything
  // behind it from the reader. Bumping `active` first (and persisting
  // it) keeps replay's probe range complete even if we crash before
  // the first append.
  manifest_.active += 1;
  if (!snaps_.WriteManifest(manifest_, error)) return false;
  journal_ = std::make_unique<JournalWriter>(
      snaps_.JournalPath(manifest_.active));

  if (prior_incarnation) m_.recoveries->Increment();
  m_.registered_queries->Set(static_cast<double>(queries_.size()));
  m_.tenants->Set(static_cast<double>(tenants_.size()));
  return true;
}

// --------------------------------------------------------------------
// Lifecycle

bool Daemon::Start(std::string* error) {
  {
    MutexLock lock(mu_);
    if (started_) {
      *error = "daemon already started";
      return false;
    }
    if (!RecoverLocked(error)) return false;
    started_ = true;
  }
  if (!listener_.Open(options_.port, error)) return false;
  if (!metrics_listener_.Open(options_.metrics_port, error)) return false;

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  apply_thread_ = std::thread([this] { ApplyLoop(); });
  http_thread_ = std::thread([this] { MetricsHttpLoop(); });
  if (options_.checkpoint_interval_s > 0.0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  if (options_.stats_period_s > 0.0) {
    reporter_ = std::make_unique<metrics::StatsReporter>(
        &metrics::MetricsRegistry::Instance(), options_.stats_period_s);
  }
  return true;
}

void Daemon::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;  // claims shutdown; the rest runs exactly once
    shutting_down_ = true;
  }

  // 1. Stop admitting: no new connections, existing ones unblocked.
  stop_accept_.store(true);
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& conn : connections_) {
    conn->sock.ShutdownBoth();
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  listener_.Close();

  // 2. Drain: every queued batch is journaled and applied before the
  //    apply thread exits (no push can race this — producers are gone).
  stop_apply_.store(true);
  if (apply_thread_.joinable()) apply_thread_.join();

  // 3. Quiesce the periodic checkpointer, then write the clean
  //    shutdown checkpoint.
  checkpoint_stop_.release();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  {
    std::string error;
    (void)CheckpointNow(&error);  // failure already counted + recoverable
  }

  // 4. Final metrics: destroy executions first so the engine flushes
  //    its per-execution deltas, then push one last exposition through
  //    the reporter before it stops.
  {
    MutexLock lock(mu_);
    queries_.clear();
    tenants_.clear();
  }
  stop_http_.store(true);
  metrics_listener_.Shutdown();
  if (http_thread_.joinable()) http_thread_.join();
  metrics_listener_.Close();
  if (reporter_ != nullptr) {
    reporter_->FlushNow();
    reporter_->Stop();
  }
}

std::uint16_t Daemon::ingest_port() const { return listener_.port(); }
std::uint16_t Daemon::metrics_port() const {
  return metrics_listener_.port();
}

std::uint64_t Daemon::global_seq() const {
  MutexLock lock(mu_);
  return global_seq_;
}

std::uint64_t Daemon::batches_acked() const {
  MutexLock lock(mu_);
  return batches_acked_;
}

std::size_t Daemon::query_count() const {
  MutexLock lock(mu_);
  return queries_.size();
}

std::size_t Daemon::tenant_count() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

// --------------------------------------------------------------------
// Tenants

Daemon::TenantState* Daemon::ProvisionTenantLocked(const TenantSpec& spec,
                                                   bool journal,
                                                   ErrCode* code,
                                                   std::string* msg) {
  if (!ValidTenantName(spec.name)) {
    *code = ErrCode::kBadName;
    *msg = "invalid tenant name";
    return nullptr;
  }
  auto it = tenants_.find(spec.name);
  const bool is_new = it == tenants_.end();
  if (is_new && tenants_.size() >= options_.max_tenants) {
    *code = ErrCode::kQuotaExceeded;
    *msg = "tenant limit of " + std::to_string(options_.max_tenants) +
           " reached";
    return nullptr;
  }
  if (journal) {
    const std::uint64_t seq = global_seq_ + 1;
    std::string err;
    if (journal_ == nullptr ||
        !journal_->Append(EncodeTenantRecord(seq, spec), &err)) {
      m_.journal_failures->Increment();
      *code = ErrCode::kInternal;
      *msg = "journal append failed: " + err;
      return nullptr;
    }
    global_seq_ = seq;
  }
  if (is_new) {
    auto& reg = metrics::MetricsRegistry::Instance();
    TenantState state;
    state.spec = spec;
    state.groups_shed = reg.GetCounter(
        "fwdecay_server_tenant_groups_shed_total",
        "Groups evicted by min-forward-weight shedding, per tenant.",
        LabelForTenant(spec.name));
    state.tuples_shed = reg.GetCounter(
        "fwdecay_server_tenant_tuples_shed_total",
        "Tuples lost inside shed groups, per tenant.",
        LabelForTenant(spec.name));
    it = tenants_.emplace(spec.name, std::move(state)).first;
  } else {
    it->second.spec = spec;
  }
  // A spec change re-arms the shedding policy of every live execution
  // owned by this tenant.
  for (auto& q : queries_) {
    if (q->tenant != spec.name) continue;
    dsms::OverloadPolicy policy;
    policy.max_groups = spec.max_groups;
    policy.decay_alpha = spec.decay_alpha;
    policy.landmark = spec.landmark;
    q->exec->SetOverloadPolicy(policy);
  }
  m_.tenants->Set(static_cast<double>(tenants_.size()));
  return &it->second;
}

Daemon::TenantState* Daemon::FindOrProvisionTenantLocked(
    const std::string& name, ErrCode* code, std::string* msg) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return &it->second;
  TenantSpec spec = options_.tenant_defaults;
  spec.name = name;
  return ProvisionTenantLocked(spec, /*journal=*/true, code, msg);
}

bool Daemon::ProvisionTenant(const TenantSpec& spec, std::string* error) {
  MutexLock lock(mu_);
  if (!started_ || journal_ == nullptr) {
    *error = "daemon is not started";
    return false;
  }
  ErrCode code = ErrCode::kNone;
  std::string msg;
  if (ProvisionTenantLocked(spec, /*journal=*/true, &code, &msg) == nullptr) {
    *error = msg;
    return false;
  }
  return true;
}

// --------------------------------------------------------------------
// Apply path

void Daemon::FanOutLocked(const dsms::PacketBatch& batch) {
  for (auto& q : queries_) {
    q->exec->Consume(batch);
    const std::uint64_t shed_groups_now = q->exec->groups_shed();
    const std::uint64_t shed_tuples_now = q->exec->tuples_shed();
    auto it = tenants_.find(q->tenant);
    if (it != tenants_.end()) {
      if (shed_groups_now > q->groups_shed_seen) {
        it->second.groups_shed->Increment(shed_groups_now -
                                          q->groups_shed_seen);
      }
      if (shed_tuples_now > q->tuples_shed_seen) {
        it->second.tuples_shed->Increment(shed_tuples_now -
                                          q->tuples_shed_seen);
      }
    }
    q->groups_shed_seen = shed_groups_now;
    q->tuples_shed_seen = shed_tuples_now;
  }
}

ApplyResult Daemon::ApplyOne(PendingBatch* item) {
  ApplyResult result;
  const double now_s = metrics::MetricsRegistry::Instance().NowSeconds();
  metrics::ScopedTimerSample sample(m_.apply_ns, now_s);

  MutexLock lock(mu_);
  const std::uint64_t seq = global_seq_ + 1;
  const std::vector<std::uint8_t> record =
      EncodeBatchRecord(seq, item->batch);
  std::string err;
  if (journal_ == nullptr || !journal_->Append(record, &err)) {
    // Graceful degradation: the batch is refused (never half-applied),
    // the client sees a structured error, the engines stay consistent.
    m_.journal_failures->Increment();
    result.ok = false;
    result.code = ErrCode::kInternal;
    result.message = "journal append failed: " + err;
    return result;
  }
  m_.journal_bytes->Increment(record.size() + 8);  // + frame overhead
  global_seq_ = seq;
  batches_acked_ += 1;
  FanOutLocked(item->batch);
  m_.batches_acked->Increment();
  m_.ingest_rate->Mark(now_s, static_cast<double>(item->batch.size()));
  result.ok = true;
  result.global_seq = seq;
  return result;
}

void Daemon::ApplyLoop() {
  for (;;) {
    std::unique_ptr<PendingBatch> item = queue_->PopWait(50);
    m_.queue_depth->Set(static_cast<double>(queue_->depth()));
    if (item == nullptr) {
      // Producers are joined before stop_apply_ is set, so an empty
      // queue here means fully drained.
      if (stop_apply_.load() && queue_->depth() == 0) break;
      continue;
    }
    if (options_.apply_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.apply_delay_ms));
    }
    item->done.set_value(ApplyOne(item.get()));
  }
}

// --------------------------------------------------------------------
// Checkpoints

bool Daemon::BuildServerSnapshotLocked(std::vector<std::uint8_t>* image,
                                       std::string* error) {
  ByteWriter body;
  body.WriteU64(global_seq_);
  body.WriteU64(batches_acked_);
  body.WriteU64(next_query_id_);
  body.WriteU32(static_cast<std::uint32_t>(tenants_.size()));
  for (const auto& [name, state] : tenants_) {  // map order: sorted names
    EncodeTenantSpec(state.spec, &body);
  }
  body.WriteU32(static_cast<std::uint32_t>(queries_.size()));
  for (const auto& q : queries_) {  // registration (id) order
    std::vector<std::uint8_t> engine_image;
    if (!q->exec->CheckpointBytes(&engine_image, error)) return false;
    body.WriteU64(q->id);
    body.WriteString(q->tenant);
    body.WriteString(q->name);
    body.WriteString(q->gsql);
    body.WriteU8(q->two_level ? 1 : 0);
    body.WriteU64(engine_image.size());
    body.WriteBytes(engine_image.data(), engine_image.size());
  }
  const std::vector<std::uint8_t>& body_bytes = body.bytes();

  ByteWriter file;
  file.WriteBytes(kServerSnapMagic, sizeof(kServerSnapMagic));
  file.WriteU32(kServerSnapVersion);
  file.WriteU32(Crc32c(body_bytes.data(), body_bytes.size()));
  file.WriteU64(body_bytes.size());
  file.WriteBytes(body_bytes.data(), body_bytes.size());
  *image = file.Take();
  return true;
}

bool Daemon::CheckpointNow(std::string* error) {
  MutexLock lock(mu_);
  if (journal_ == nullptr) {
    *error = "daemon holds no recovered state to checkpoint";
    return false;
  }
  // Persist the epoch bump BEFORE any record can land in the new
  // segment: replay's probe range [snapshot epoch, active] must always
  // cover every acknowledged record, even if we crash right here.
  const std::uint64_t epoch = manifest_.active + 1;
  Manifest pre = manifest_;
  pre.active = epoch;
  if (!snaps_.WriteManifest(pre, error)) {
    m_.checkpoint_failures->Increment();
    return false;
  }
  manifest_.active = epoch;
  journal_ = std::make_unique<JournalWriter>(snaps_.JournalPath(epoch));

  std::vector<std::uint8_t> image;
  if (!BuildServerSnapshotLocked(&image, error)) {
    // The segment switch stands; records continue in the new segment
    // and the next checkpoint retries the snapshot.
    m_.checkpoint_failures->Increment();
    return false;
  }
  if (!snaps_.PublishSnapshot(epoch, image, &manifest_, error)) {
    m_.checkpoint_failures->Increment();
    return false;
  }
  m_.checkpoints->Increment();
  return true;
}

void Daemon::CheckpointLoop() {
  const auto period = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(options_.checkpoint_interval_s));
  for (;;) {
    if (checkpoint_stop_.try_acquire_for(period)) break;
    std::string error;
    (void)CheckpointNow(&error);  // failures surface via the metric
  }
}

// --------------------------------------------------------------------
// Serving: accept loop and connection threads

void Daemon::ReapFinishedConnections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::AcceptLoop() {
  while (!stop_accept_.load()) {
    Socket sock;
    std::string error;
    const IoStatus status = listener_.AcceptOnce(200, &sock, &error);
    ReapFinishedConnections();
    if (status == IoStatus::kTimeout) continue;
    if (status == IoStatus::kClosed) break;
    if (status != IoStatus::kOk) continue;

    if (connections_.size() >= options_.max_connections) {
      // Admission control: refuse with a structured reply, never by
      // silently dropping the connection.
      std::string send_error;
      (void)SendFrame(sock, MsgType::kError,
                      EncodeError(ErrCode::kNotAdmitted,
                                  "connection limit reached"),
                      1000, &send_error);
      continue;  // sock closes on scope exit
    }

    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void Daemon::ServeConnection(Connection* conn) {
  m_.connections_total->Increment();
  m_.connections_active->Set(m_.connections_active->value() + 1);
  ConnState state;
  bool running = true;
  while (running) {
    Frame frame;
    std::string error;
    const FrameReadStatus status =
        ReadFrame(conn->sock, &frame, options_.idle_timeout_ms,
                  options_.io_timeout_ms, &error);
    switch (status) {
      case FrameReadStatus::kOk:
        m_.frames_total->Increment();
        running = HandleFrame(conn, &state, frame);
        break;
      case FrameReadStatus::kTimeout: {
        // Idle reaper: tell the peer why, then hang up.
        m_.connections_reaped->Increment();
        std::string send_error;
        (void)SendFrame(conn->sock, MsgType::kError,
                        EncodeError(ErrCode::kIdleTimeout,
                                    "connection idle past the deadline"),
                        1000, &send_error);
        running = false;
        break;
      }
      case FrameReadStatus::kTooLarge: {
        // Satellite: refuse oversized frames with a structured error;
        // the stream stayed synchronized, so the session survives.
        m_.frame_errors->Increment();
        std::string send_error;
        running =
            SendFrame(conn->sock, MsgType::kError,
                      EncodeError(ErrCode::kFrameTooLarge, error),
                      options_.io_timeout_ms, &send_error) == IoStatus::kOk;
        break;
      }
      case FrameReadStatus::kBadMagic: {
        // The byte stream is unsynchronized: answer once, then close.
        m_.frame_errors->Increment();
        std::string send_error;
        (void)SendFrame(conn->sock, MsgType::kError,
                        EncodeError(ErrCode::kBadMagic, error), 1000,
                        &send_error);
        running = false;
        break;
      }
      case FrameReadStatus::kClosed:
        running = false;
        break;
      case FrameReadStatus::kError:
        m_.frame_errors->Increment();
        running = false;
        break;
    }
  }
  m_.connections_active->Set(
      std::max(m_.connections_active->value() - 1, 0.0));
  conn->done.store(true);
}

bool Daemon::HandleFrame(Connection* conn, ConnState* state,
                         const Frame& frame) {
  MsgType reply_type = MsgType::kError;
  std::vector<std::uint8_t> reply;
  switch (frame.type) {
    case MsgType::kHello:
      reply = HandleHello(state, frame, &reply_type);
      break;
    case MsgType::kRegister:
      reply = HandleRegister(state, frame, &reply_type);
      break;
    case MsgType::kIngest:
      reply = HandleIngest(frame, &reply_type);
      break;
    case MsgType::kPoll:
      reply = HandlePoll(frame, &reply_type);
      break;
    case MsgType::kStats:
      reply = HandleStats(&reply_type);
      break;
    default:
      reply = EncodeError(ErrCode::kBadFrame, "unexpected message type");
      break;
  }
  std::string send_error;
  return SendFrame(conn->sock, reply_type, reply, options_.io_timeout_ms,
                   &send_error) == IoStatus::kOk;
}

std::vector<std::uint8_t> Daemon::HandleHello(ConnState* state,
                                              const Frame& frame,
                                              MsgType* type) {
  *type = MsgType::kError;
  std::string tenant;
  if (!DecodeHello(frame.payload, &tenant)) {
    return EncodeError(ErrCode::kBadFrame, "malformed Hello");
  }
  MutexLock lock(mu_);
  if (shutting_down_) {
    return EncodeError(ErrCode::kShuttingDown, "shutting down");
  }
  ErrCode code = ErrCode::kNone;
  std::string msg;
  if (FindOrProvisionTenantLocked(tenant, &code, &msg) == nullptr) {
    return EncodeError(code, msg);
  }
  state->tenant = tenant;
  *type = MsgType::kHelloOk;
  return EncodeHello(tenant);
}

std::vector<std::uint8_t> Daemon::HandleRegister(ConnState* state,
                                                 const Frame& frame,
                                                 MsgType* type) {
  *type = MsgType::kError;
  if (state->tenant.empty()) {
    return EncodeError(ErrCode::kNotAdmitted, "Hello before Register");
  }
  std::string name;
  std::string gsql;
  bool two_level = options_.two_level_default;
  ErrCode code = ErrCode::kBadFrame;
  if (!DecodeRegister(frame.payload, &name, &gsql, &two_level, &code)) {
    return EncodeError(code, "malformed Register");
  }

  MutexLock lock(mu_);
  if (shutting_down_) {
    return EncodeError(ErrCode::kShuttingDown, "shutting down");
  }
  auto it = tenants_.find(state->tenant);
  if (it == tenants_.end()) {
    return EncodeError(ErrCode::kNotAdmitted, "tenant vanished");
  }
  for (const auto& q : queries_) {
    if (q->tenant == state->tenant && q->name == name) {
      return EncodeError(ErrCode::kBadName,
                         "query name already registered for this tenant");
    }
  }
  if (it->second.query_count >= it->second.spec.max_queries) {
    return EncodeError(
        ErrCode::kQuotaExceeded,
        "tenant holds its maximum of " +
            std::to_string(it->second.spec.max_queries) + " queries");
  }
  // Validate the plan before journaling its registration: a record in
  // the journal must always re-compile on replay.
  {
    std::string compile_error;
    dsms::CompiledQuery::Options qopts;
    qopts.two_level = two_level;
    if (dsms::CompiledQuery::Compile(gsql, &compile_error, qopts) ==
        nullptr) {
      return EncodeError(ErrCode::kParseError, compile_error);
    }
  }
  const std::uint64_t id = next_query_id_;
  const std::uint64_t seq = global_seq_ + 1;
  std::string err;
  if (journal_ == nullptr ||
      !journal_->Append(EncodeRegisterRecord(seq, id, state->tenant, name,
                                             gsql, two_level),
                        &err)) {
    m_.journal_failures->Increment();
    return EncodeError(ErrCode::kInternal, "journal append failed: " + err);
  }
  global_seq_ = seq;
  if (!InstallQueryLocked(id, state->tenant, name, gsql, two_level, &err)) {
    return EncodeError(ErrCode::kInternal, err);
  }
  *type = MsgType::kRegisterOk;
  return EncodeRegisterOk(id);
}

std::vector<std::uint8_t> Daemon::HandleIngest(const Frame& frame,
                                               MsgType* type) {
  *type = MsgType::kError;
  auto item = std::make_unique<PendingBatch>();
  if (!DecodeIngest(frame.payload, &item->client_seq, &item->batch)) {
    return EncodeError(ErrCode::kBadFrame, "malformed ingest batch");
  }
  {
    MutexLock lock(mu_);
    if (shutting_down_) {
      return EncodeError(ErrCode::kShuttingDown, "shutting down");
    }
  }
  const std::uint64_t client_seq = item->client_seq;
  std::future<ApplyResult> done = item->done.get_future();
  if (!queue_->TryPush(std::move(item))) {
    // Bounded queue full: explicit backpressure, bounded memory.
    {
      MutexLock lock(mu_);
      backpressure_total_ += 1;
    }
    m_.backpressure->Increment();
    *type = MsgType::kBusy;
    return EncodeBusy(client_seq,
                      static_cast<std::uint32_t>(queue_->depth()));
  }
  m_.queue_depth->Set(static_cast<double>(queue_->depth()));
  if (done.wait_for(std::chrono::milliseconds(kAckWaitMs)) !=
      std::future_status::ready) {
    return EncodeError(ErrCode::kInternal,
                       "timed out waiting for the apply thread");
  }
  const ApplyResult result = done.get();
  if (!result.ok) return EncodeError(result.code, result.message);
  *type = MsgType::kAck;
  return EncodeAck(client_seq, result.global_seq);
}

std::vector<std::uint8_t> Daemon::HandlePoll(const Frame& frame,
                                             MsgType* type) {
  *type = MsgType::kError;
  std::uint64_t query_id = 0;
  if (!DecodePoll(frame.payload, &query_id)) {
    return EncodeError(ErrCode::kBadFrame, "malformed poll");
  }
  std::vector<std::uint8_t> image;
  const dsms::CompiledQuery* plan = nullptr;
  {
    MutexLock lock(mu_);
    const QueryEntry* entry = nullptr;
    for (const auto& q : queries_) {
      if (q->id == query_id) {
        entry = q.get();
        break;
      }
    }
    if (entry == nullptr) {
      return EncodeError(ErrCode::kUnknownQuery,
                         "no query with id " + std::to_string(query_id));
    }
    std::string err;
    if (!entry->exec->CheckpointBytes(&image, &err)) {
      return EncodeError(ErrCode::kInternal, err);
    }
    plan = entry->plan.get();
  }
  // Finish() is destructive, so the poll runs against a clone restored
  // from the execution's own snapshot image — the live execution keeps
  // aggregating, and plans are immutable + never dropped while
  // connection threads run.
  std::unique_ptr<dsms::QueryExecution> clone = plan->NewExecution();
  std::string err;
  if (!clone->RestoreBytes(image.data(), image.size(), &err)) {
    return EncodeError(ErrCode::kInternal, err);
  }
  const dsms::ResultSet result = clone->Finish();
  std::vector<std::uint8_t> payload = EncodeResult(result);
  if (payload.size() > kMaxFrameBytes) {
    return EncodeError(ErrCode::kResultTooLarge,
                       "result of " + std::to_string(payload.size()) +
                           " bytes exceeds the frame limit");
  }
  m_.polls->Increment();
  *type = MsgType::kResult;
  return payload;
}

std::vector<std::uint8_t> Daemon::HandleStats(MsgType* type) {
  WireStats stats;
  {
    MutexLock lock(mu_);
    stats.global_seq = global_seq_;
    stats.batches_acked = batches_acked_;
    stats.backpressure_total = backpressure_total_;
    for (const auto& q : queries_) {
      stats.groups_shed_total += q->exec->groups_shed();
    }
    stats.queries = static_cast<std::uint32_t>(queries_.size());
    stats.tenants = static_cast<std::uint32_t>(tenants_.size());
  }
  stats.queue_depth = static_cast<std::uint32_t>(queue_->depth());
  *type = MsgType::kStatsOk;
  return EncodeStatsOk(stats);
}

// --------------------------------------------------------------------
// /metrics over HTTP

void Daemon::MetricsHttpLoop() {
  while (!stop_http_.load()) {
    Socket sock;
    std::string error;
    const IoStatus status = metrics_listener_.AcceptOnce(200, &sock, &error);
    if (status == IoStatus::kTimeout) continue;
    if (status == IoStatus::kClosed) break;
    if (status != IoStatus::kOk) continue;
    // Scrapes are rare and tiny; serving them serially keeps the
    // endpoint from becoming a connection sink.
    ServeMetricsConnection(std::move(sock));
  }
}

void Daemon::ServeMetricsConnection(Socket sock) {
  // Read the request head (byte-wise: requests are a few hundred bytes
  // and the deadline caps a dribbling client).
  std::string request;
  std::string error;
  while (request.size() < kMaxHttpRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    char c = 0;
    if (RecvExactly(sock, &c, 1, kHttpTimeoutMs, &error) != IoStatus::kOk) {
      return;
    }
    request.push_back(c);
  }
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  std::string body;
  std::string status_line = "HTTP/1.1 404 Not Found";
  std::string content_type = "text/plain; charset=utf-8";
  if (line.rfind("GET /metrics", 0) == 0) {
    metrics::MetricsRegistry::Instance().RenderPrometheus(&body);
    status_line = "HTTP/1.1 200 OK";
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (line.rfind("GET /healthz", 0) == 0) {
    body = "ok\n";
    status_line = "HTTP/1.1 200 OK";
  } else {
    body = "not found\n";
  }
  std::string response = status_line + "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  (void)SendExactly(sock, response.data(), response.size(), kHttpTimeoutMs,
                    &error);
}

}  // namespace fwdecay::server
