#include "server/client.h"

namespace fwdecay::server {

namespace {

/// Extracts a structured error reply into (code, message); false when
/// the frame is not a kError frame.
bool AsError(const Frame& frame, ErrCode* code, std::string* message) {
  if (frame.type != MsgType::kError) return false;
  if (!DecodeError(frame.payload, code, message)) {
    *code = ErrCode::kInternal;
    *message = "malformed error reply";
  }
  return true;
}

}  // namespace

bool Client::Connect(std::uint16_t port, std::string* error) {
  Close();
  return server::Connect(port, timeout_ms_, &sock_, error) == IoStatus::kOk;
}

void Client::Close() { sock_.Close(); }

bool Client::RoundTrip(MsgType type, const std::vector<std::uint8_t>& request,
                       Frame* reply, std::string* error) {
  if (!sock_.ok()) {
    *error = "client is not connected";
    return false;
  }
  if (SendFrame(sock_, type, request, timeout_ms_, error) != IoStatus::kOk) {
    return false;
  }
  const FrameReadStatus status =
      ReadFrame(sock_, reply, timeout_ms_, timeout_ms_, error);
  if (status != FrameReadStatus::kOk) {
    if (error->empty()) *error = "connection lost awaiting the reply";
    return false;
  }
  return true;
}

bool Client::Hello(const std::string& tenant, std::string* error) {
  Frame reply;
  if (!RoundTrip(MsgType::kHello, EncodeHello(tenant), &reply, error)) {
    return false;
  }
  ErrCode code = ErrCode::kNone;
  if (AsError(reply, &code, error)) return false;
  if (reply.type != MsgType::kHelloOk) {
    *error = "unexpected reply to Hello";
    return false;
  }
  return true;
}

bool Client::RegisterQuery(const std::string& name, const std::string& gsql,
                           bool two_level, std::uint64_t* query_id,
                           ErrCode* code, std::string* error) {
  *code = ErrCode::kNone;
  Frame reply;
  if (!RoundTrip(MsgType::kRegister, EncodeRegister(name, gsql, two_level),
                 &reply, error)) {
    return false;
  }
  if (AsError(reply, code, error)) return false;
  if (reply.type != MsgType::kRegisterOk ||
      !DecodeRegisterOk(reply.payload, query_id)) {
    *error = "unexpected reply to Register";
    return false;
  }
  return true;
}

bool Client::Ingest(std::uint64_t client_seq, const dsms::PacketBatch& batch,
                    IngestReply* reply, std::string* error) {
  *reply = IngestReply{};
  Frame frame;
  if (!RoundTrip(MsgType::kIngest, EncodeIngest(client_seq, batch), &frame,
                 error)) {
    return false;
  }
  switch (frame.type) {
    case MsgType::kAck: {
      std::uint64_t echoed = 0;
      if (!DecodeAck(frame.payload, &echoed, &reply->global_seq) ||
          echoed != client_seq) {
        *error = "malformed or misdirected ack";
        return false;
      }
      reply->ok = true;
      return true;
    }
    case MsgType::kBusy: {
      std::uint64_t echoed = 0;
      if (!DecodeBusy(frame.payload, &echoed, &reply->queue_depth) ||
          echoed != client_seq) {
        *error = "malformed or misdirected busy reply";
        return false;
      }
      reply->busy = true;
      return true;
    }
    case MsgType::kError:
      (void)AsError(frame, &reply->code, &reply->message);
      return true;
    default:
      *error = "unexpected reply to Ingest";
      return false;
  }
}

bool Client::PollResult(std::uint64_t query_id, dsms::ResultSet* result,
                        ErrCode* code, std::string* error) {
  *code = ErrCode::kNone;
  Frame reply;
  if (!RoundTrip(MsgType::kPoll, EncodePoll(query_id), &reply, error)) {
    return false;
  }
  if (AsError(reply, code, error)) return false;
  if (reply.type != MsgType::kResult || !DecodeResult(reply.payload, result)) {
    *error = "unexpected reply to Poll";
    return false;
  }
  return true;
}

bool Client::Stats(WireStats* stats, std::string* error) {
  Frame reply;
  if (!RoundTrip(MsgType::kStats, {}, &reply, error)) return false;
  ErrCode code = ErrCode::kNone;
  if (AsError(reply, &code, error)) return false;
  if (reply.type != MsgType::kStatsOk ||
      !DecodeStatsOk(reply.payload, stats)) {
    *error = "unexpected reply to Stats";
    return false;
  }
  return true;
}

}  // namespace fwdecay::server
