#ifndef FWDECAY_SERVER_CLIENT_H_
#define FWDECAY_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "server/frame.h"
#include "server/net.h"

// Minimal fwdecayd client (tests, examples, the CI smoke script).
//
// One Client wraps one connection and speaks the frame protocol
// synchronously: every call sends one frame and blocks for the reply.
// Transport failures surface as false + error; protocol refusals
// (kBusy, kError) surface through the reply structs so callers can
// distinguish "retry later" (backpressure) from "fix your request".

namespace fwdecay::server {

/// Outcome of one Ingest call. `ok` means the batch is durable and
/// applied (kAck); `busy` means the bounded queue refused it (kBusy) —
/// retry after a backoff; otherwise `code`/`message` carry the
/// structured error.
struct IngestReply {
  bool ok = false;
  bool busy = false;
  std::uint64_t global_seq = 0;
  std::uint32_t queue_depth = 0;
  ErrCode code = ErrCode::kNone;
  std::string message;
};

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:port.
  bool Connect(std::uint16_t port, std::string* error);
  void Close();
  bool connected() const { return sock_.ok(); }

  /// Tenant handshake; required before Register.
  bool Hello(const std::string& tenant, std::string* error);

  /// Registers a continuous query; *query_id receives its handle.
  /// A structured refusal (quota, parse error, …) lands in *code and
  /// *error; a transport failure leaves *code at kNone.
  bool RegisterQuery(const std::string& name, const std::string& gsql,
                     bool two_level, std::uint64_t* query_id, ErrCode* code,
                     std::string* error);

  /// Sends one batch and waits for kAck/kBusy/kError (see IngestReply).
  /// False only on transport failure.
  bool Ingest(std::uint64_t client_seq, const dsms::PacketBatch& batch,
              IngestReply* reply, std::string* error);

  /// Non-destructive result snapshot of one registered query.
  bool PollResult(std::uint64_t query_id, dsms::ResultSet* result,
                  ErrCode* code, std::string* error);

  /// Server counter snapshot.
  bool Stats(WireStats* stats, std::string* error);

  /// The raw socket, for hostile-input tests that need to write
  /// malformed bytes past the codec layer.
  Socket& raw_socket() { return sock_; }

  /// Per-call reply deadline (generous default: an ingest ack waits on
  /// journal fsync + fan-out).
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

 private:
  /// Sends `request` and reads the reply frame. False on transport
  /// failure; protocol-level errors come back as frames for the caller
  /// to interpret.
  bool RoundTrip(MsgType type, const std::vector<std::uint8_t>& request,
                 Frame* reply, std::string* error);

  Socket sock_;
  int timeout_ms_ = 70'000;
};

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_CLIENT_H_
