#ifndef FWDECAY_SERVER_DAEMON_H_
#define FWDECAY_SERVER_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "server/frame.h"
#include "server/journal.h"
#include "server/net.h"
#include "server/snapshot.h"
#include "server/tenant.h"
#include "util/metrics.h"
#include "util/thread_annotations.h"

// fwdecayd: the fault-tolerant forward-decay serving daemon
// (DESIGN.md §11, ROADMAP item 1).
//
// One ingest stream, many continuous queries: every acknowledged batch
// fans out to every registered plan, each running under its tenant's
// own forward-decay parameters and shedding budget. The robustness
// envelope, layer by layer:
//
//   admission    Hello-time tenant provisioning against max_tenants,
//                per-tenant query quotas, a connection cap.
//   backpressure A bounded ingest queue. When it is full the client
//                gets an explicit kBusy (never a silent drop, never an
//                unbounded buffer); under sustained overload each
//                query degrades via the engine's min-forward-weight
//                shedding instead of OOMing.
//   deadlines    Every socket op has a deadline; idle connections are
//                reaped; EINTR (real or injected) never kills a
//                session.
//   durability   A batch is acknowledged only after its record is
//                journaled (append + fsync). Checkpoints rotate
//                FWDSRV01 snapshots through the CURRENT manifest;
//                recovery restores the newest intact snapshot, falls
//                back on CRC failure, and replays journal segments —
//                acknowledged batches survive SIGKILL bit-identically.
//   shutdown     SIGTERM/SIGINT drains the queue, flushes final
//                metrics through the PR 5 reporter, and writes a clean
//                shutdown checkpoint.
//
// Threads: one acceptor, one connection thread per client, one apply
// thread (the single writer — it defines the total order), an optional
// periodic checkpointer, and one HTTP thread serving /metrics.

namespace fwdecay::server {

/// Outcome of applying one ingest batch (delivered to the connection
/// thread through a promise so the ack leaves only after durability).
struct ApplyResult {
  bool ok = false;
  std::uint64_t global_seq = 0;
  ErrCode code = ErrCode::kNone;
  std::string message;
};

/// One queued ingest batch awaiting the apply thread.
struct PendingBatch {
  dsms::PacketBatch batch{1};
  std::uint64_t client_seq = 0;
  std::promise<ApplyResult> done;
};

/// Bounded MPSC queue between connection threads and the apply thread.
/// TryPush never blocks: a full queue is reported to the caller, which
/// turns it into a kBusy reply — backpressure is explicit, memory is
/// bounded.
class IngestQueue {
 public:
  explicit IngestQueue(std::size_t capacity);

  /// False when the queue is at capacity (the item is untouched).
  bool TryPush(std::unique_ptr<PendingBatch> item);

  /// Waits up to timeout_ms for an item; nullptr on timeout.
  std::unique_ptr<PendingBatch> PopWait(int timeout_ms);

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  // Signals item availability; the deque itself stays mutex-guarded
  // (fwdecay::Mutex carries the capability annotation, and a counting
  // semaphore — unlike a condition variable — composes with it).
  std::counting_semaphore<> ready_{0};
  mutable Mutex mu_;
  std::deque<std::unique_ptr<PendingBatch>> items_ FWDECAY_GUARDED_BY(mu_);
};

struct DaemonOptions {
  /// Data directory for journal segments, snapshots, and CURRENT.
  std::string data_dir;

  /// Ingest/control port; 0 picks an ephemeral port (read it back via
  /// ingest_port()).
  std::uint16_t port = 0;

  /// HTTP /metrics port; 0 picks an ephemeral port.
  std::uint16_t metrics_port = 0;

  /// Bounded ingest queue capacity (batches).
  std::size_t queue_capacity = 64;

  /// Concurrent client connections admitted.
  std::size_t max_connections = 32;

  /// Tenants admitted (Hello-time provisioning beyond this is refused).
  std::size_t max_tenants = 16;

  /// Snapshots retained by rotation (also bounds recovery fallback).
  std::size_t snapshot_retain = 3;

  /// Seconds between periodic checkpoints; 0 disables the thread
  /// (shutdown still writes its clean checkpoint).
  double checkpoint_interval_s = 0.0;

  /// A connection silent for this long is reaped.
  int idle_timeout_ms = 30'000;

  /// Deadline for any single frame transfer once started.
  int io_timeout_ms = 10'000;

  /// Template for Hello-provisioned tenants (name is overwritten).
  TenantSpec tenant_defaults;

  /// Two-level aggregation for registered plans that don't specify.
  bool two_level_default = false;

  /// Seconds between periodic stderr metric reports; 0 disables the
  /// reporter (Stop still flushes once when it is enabled).
  double stats_period_s = 0.0;

  /// Test seam: sleep this long in the apply thread before each batch,
  /// so the backpressure tests can fill the bounded queue
  /// deterministically instead of racing the real apply latency.
  int apply_delay_ms = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Recovers state from the data directory (snapshot + journal
  /// replay), then starts serving. False with *error on unrecoverable
  /// state or bind failure.
  bool Start(std::string* error);

  /// Graceful shutdown: stop admitting, drain the ingest queue, write
  /// the clean shutdown checkpoint, flush final metrics. Idempotent.
  void Stop();

  /// Serializes and publishes a rotated snapshot now.
  bool CheckpointNow(std::string* error);

  std::uint16_t ingest_port() const;
  std::uint16_t metrics_port() const;

  /// Provisions (or updates the spec of) a tenant explicitly — the
  /// --tenant flag and tests use this; Hello auto-provisions from
  /// tenant_defaults.
  bool ProvisionTenant(const TenantSpec& spec, std::string* error);

  // Introspection (tests, smoke script).
  std::uint64_t global_seq() const;
  std::uint64_t batches_acked() const;
  std::size_t query_count() const;
  std::size_t tenant_count() const;

 private:
  struct QueryEntry {
    std::uint64_t id = 0;
    std::string tenant;
    std::string name;
    std::string gsql;
    bool two_level = false;
    std::unique_ptr<dsms::CompiledQuery> plan;
    std::unique_ptr<dsms::QueryExecution> exec;
    // Last observed shedding counters, for per-tenant metric deltas.
    std::uint64_t groups_shed_seen = 0;
    std::uint64_t tuples_shed_seen = 0;
  };

  struct TenantState {
    TenantSpec spec;
    std::size_t query_count = 0;
    metrics::Counter* groups_shed = nullptr;  // labelled tenant="..."
    metrics::Counter* tuples_shed = nullptr;
  };

  struct Connection {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // --- lifecycle helpers (Start) ------------------------------------
  bool RecoverLocked(std::string* error) FWDECAY_REQUIRES(mu_);
  bool LoadServerSnapshotLocked(std::uint64_t epoch, std::string* error)
      FWDECAY_REQUIRES(mu_);
  bool ReplaySegmentsLocked(std::uint64_t from_epoch, std::uint64_t to_epoch,
                            std::string* error) FWDECAY_REQUIRES(mu_);
  void ResetEngineStateLocked() FWDECAY_REQUIRES(mu_);

  // --- serving threads ----------------------------------------------
  void AcceptLoop();
  void ServeConnection(Connection* conn);
  void ApplyLoop();
  void CheckpointLoop();
  void MetricsHttpLoop();
  void ServeMetricsConnection(Socket sock);
  void ReapFinishedConnections();  // acceptor thread only

  // --- request handlers (connection threads) ------------------------
  struct ConnState {
    std::string tenant;  // set by Hello
  };
  bool HandleFrame(Connection* conn, ConnState* state, const Frame& frame);
  std::vector<std::uint8_t> HandleHello(ConnState* state,
                                        const Frame& frame, MsgType* type);
  std::vector<std::uint8_t> HandleRegister(ConnState* state,
                                           const Frame& frame, MsgType* type);
  std::vector<std::uint8_t> HandleIngest(const Frame& frame, MsgType* type);
  std::vector<std::uint8_t> HandlePoll(const Frame& frame, MsgType* type);
  std::vector<std::uint8_t> HandleStats(MsgType* type);

  // --- state transitions --------------------------------------------
  ApplyResult ApplyOne(PendingBatch* item);
  void FanOutLocked(const dsms::PacketBatch& batch) FWDECAY_REQUIRES(mu_);
  TenantState* FindOrProvisionTenantLocked(const std::string& name,
                                           ErrCode* code, std::string* msg)
      FWDECAY_REQUIRES(mu_);
  TenantState* ProvisionTenantLocked(const TenantSpec& spec, bool journal,
                                     ErrCode* code, std::string* msg)
      FWDECAY_REQUIRES(mu_);
  bool BuildServerSnapshotLocked(std::vector<std::uint8_t>* image,
                                 std::string* error) FWDECAY_REQUIRES(mu_);
  bool InstallQueryLocked(std::uint64_t id, const std::string& tenant,
                          const std::string& name, const std::string& gsql,
                          bool two_level, std::string* error)
      FWDECAY_REQUIRES(mu_);

  const DaemonOptions options_;
  SnapshotManager snaps_;

  mutable Mutex mu_;
  bool started_ FWDECAY_GUARDED_BY(mu_) = false;
  bool stopped_ FWDECAY_GUARDED_BY(mu_) = false;
  bool shutting_down_ FWDECAY_GUARDED_BY(mu_) = false;
  Manifest manifest_ FWDECAY_GUARDED_BY(mu_);
  std::unique_ptr<JournalWriter> journal_ FWDECAY_GUARDED_BY(mu_);
  std::uint64_t global_seq_ FWDECAY_GUARDED_BY(mu_) = 0;
  std::uint64_t batches_acked_ FWDECAY_GUARDED_BY(mu_) = 0;
  std::uint64_t backpressure_total_ FWDECAY_GUARDED_BY(mu_) = 0;
  std::uint64_t next_query_id_ FWDECAY_GUARDED_BY(mu_) = 1;
  std::map<std::string, TenantState> tenants_ FWDECAY_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<QueryEntry>> queries_ FWDECAY_GUARDED_BY(mu_);

  std::unique_ptr<IngestQueue> queue_;

  Listener listener_;
  Listener metrics_listener_;

  // Owned by the acceptor thread (plus Stop after joining it).
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> stop_accept_{false};
  std::atomic<bool> stop_apply_{false};
  std::atomic<bool> stop_http_{false};
  // Released by Stop to interrupt the checkpoint thread's sleep.
  std::binary_semaphore checkpoint_stop_{0};

  std::thread accept_thread_;
  std::thread apply_thread_;
  std::thread checkpoint_thread_;
  std::thread http_thread_;

  std::unique_ptr<metrics::StatsReporter> reporter_;

  // Metric handles (registry pointers are stable for process life).
  struct ServerMetrics {
    metrics::Counter* connections_total;
    metrics::Gauge* connections_active;
    metrics::Counter* connections_reaped;
    metrics::Counter* frames_total;
    metrics::Counter* frame_errors;
    metrics::Counter* batches_acked;
    metrics::Counter* backpressure;
    metrics::Counter* journal_failures;
    metrics::Counter* journal_bytes;
    metrics::Gauge* queue_depth;
    metrics::Counter* checkpoints;
    metrics::Counter* checkpoint_failures;
    metrics::Counter* recoveries;
    metrics::Counter* recovery_fallbacks;
    metrics::Counter* replayed_batches;
    metrics::Gauge* registered_queries;
    metrics::Gauge* tenants;
    metrics::Counter* polls;
    metrics::DecayedRate* ingest_rate;
    metrics::LatencyReservoir* apply_ns;
  };
  ServerMetrics m_;
};

}  // namespace fwdecay::server

#endif  // FWDECAY_SERVER_DAEMON_H_
