// fwdecayd: the fault-tolerant forward-decay serving daemon.
//
//   fwdecayd --data-dir /var/lib/fwdecay [--port N] [--metrics-port N] ...
//
// Runs until SIGTERM/SIGINT, then drains the ingest queue, writes a
// clean shutdown checkpoint, and flushes final metrics (server/daemon.h
// documents the full robustness envelope). On startup it prints one
// machine-parseable line per listener:
//
//   fwdecayd listening on 127.0.0.1:<port>
//   fwdecayd metrics on http://127.0.0.1:<port>/metrics
//
// so the CI smoke script and crash tests can find ephemeral ports.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/daemon.h"

namespace {

// Self-pipe: the signal handler writes one byte; main polls the read
// end. Keeps the handler async-signal-safe (write(2) only).
int g_signal_pipe[2] = {-1, -1};

void HandleShutdownSignal(int /*signo*/) {
  const char byte = 1;
  // A full pipe just means a shutdown is already pending.
  (void)!write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data-dir DIR [options]\n"
      "\n"
      "  --data-dir DIR           journal + snapshot directory (required)\n"
      "  --port N                 ingest/control port (default 0 = ephemeral)\n"
      "  --metrics-port N         HTTP /metrics port (default 0 = ephemeral)\n"
      "  --queue-capacity N       bounded ingest queue, in batches (64)\n"
      "  --max-connections N      concurrent client connections (32)\n"
      "  --max-tenants N          tenants admitted (16)\n"
      "  --retain N               snapshots kept by rotation (3)\n"
      "  --checkpoint-interval S  seconds between checkpoints (0 = off)\n"
      "  --idle-timeout-ms N      reap connections idle this long (30000)\n"
      "  --io-timeout-ms N        per-frame transfer deadline (10000)\n"
      "  --stats-period S         stderr metrics report period (0 = off)\n"
      "  --alpha A                default tenant decay alpha (0.05)\n"
      "  --landmark L             default tenant landmark (0)\n"
      "  --max-groups N           default tenant shedding budget (4096)\n"
      "  --max-queries N          default tenant query quota (8)\n"
      "  --two-level              default new plans to two-level mode\n",
      argv0);
}

bool ParseU64Flag(const char* text, std::uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDoubleFlag(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fwdecay::server::DaemonOptions options;
  std::uint64_t u = 0;
  double d = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--help" || flag == "-h") {
      Usage(argv[0]);
      return 0;
    }
    if (flag == "--two-level") {
      options.two_level_default = true;
      continue;
    }
    // Everything below takes a value.
    bool ok = value != nullptr;
    if (ok && flag == "--data-dir") {
      options.data_dir = value;
    } else if (ok && flag == "--port" && ParseU64Flag(value, &u) &&
               u <= 0xffff) {
      options.port = static_cast<std::uint16_t>(u);
    } else if (ok && flag == "--metrics-port" && ParseU64Flag(value, &u) &&
               u <= 0xffff) {
      options.metrics_port = static_cast<std::uint16_t>(u);
    } else if (ok && flag == "--queue-capacity" && ParseU64Flag(value, &u) &&
               u >= 1) {
      options.queue_capacity = static_cast<std::size_t>(u);
    } else if (ok && flag == "--max-connections" && ParseU64Flag(value, &u) &&
               u >= 1) {
      options.max_connections = static_cast<std::size_t>(u);
    } else if (ok && flag == "--max-tenants" && ParseU64Flag(value, &u) &&
               u >= 1) {
      options.max_tenants = static_cast<std::size_t>(u);
    } else if (ok && flag == "--retain" && ParseU64Flag(value, &u) && u >= 1) {
      options.snapshot_retain = static_cast<std::size_t>(u);
    } else if (ok && flag == "--checkpoint-interval" &&
               ParseDoubleFlag(value, &d) && d >= 0.0) {
      options.checkpoint_interval_s = d;
    } else if (ok && flag == "--idle-timeout-ms" && ParseU64Flag(value, &u) &&
               u >= 1) {
      options.idle_timeout_ms = static_cast<int>(u);
    } else if (ok && flag == "--io-timeout-ms" && ParseU64Flag(value, &u) &&
               u >= 1) {
      options.io_timeout_ms = static_cast<int>(u);
    } else if (ok && flag == "--stats-period" && ParseDoubleFlag(value, &d) &&
               d >= 0.0) {
      options.stats_period_s = d;
    } else if (ok && flag == "--alpha" && ParseDoubleFlag(value, &d)) {
      options.tenant_defaults.decay_alpha = d;
    } else if (ok && flag == "--landmark" && ParseDoubleFlag(value, &d)) {
      options.tenant_defaults.landmark = d;
    } else if (ok && flag == "--max-groups" && ParseU64Flag(value, &u)) {
      options.tenant_defaults.max_groups = static_cast<std::size_t>(u);
    } else if (ok && flag == "--max-queries" && ParseU64Flag(value, &u) &&
               u >= 1) {
      options.tenant_defaults.max_queries = static_cast<std::size_t>(u);
    } else {
      std::fprintf(stderr, "fwdecayd: bad flag or value: %s\n", flag.c_str());
      Usage(argv[0]);
      return 2;
    }
    ++i;  // consumed the value
  }
  if (options.data_dir.empty()) {
    std::fprintf(stderr, "fwdecayd: --data-dir is required\n");
    Usage(argv[0]);
    return 2;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("fwdecayd: pipe");
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: interrupted syscalls are already retried by the
  // EINTR-safe I/O layer, and the self-pipe wakes the poll below.
  if (sigaction(SIGTERM, &action, nullptr) != 0 ||
      sigaction(SIGINT, &action, nullptr) != 0) {
    std::perror("fwdecayd: sigaction");
    return 1;
  }

  fwdecay::server::Daemon daemon(options);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "fwdecayd: start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("fwdecayd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(daemon.ingest_port()));
  std::printf("fwdecayd metrics on http://127.0.0.1:%u/metrics\n",
              static_cast<unsigned>(daemon.metrics_port()));
  std::fflush(stdout);

  // Block until a shutdown signal lands (EINTR from the signal itself
  // just re-polls; the byte in the pipe is what decides).
  for (;;) {
    struct pollfd pfd;
    pfd.fd = g_signal_pipe[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, -1);
    if (rc > 0) break;
    if (rc < 0 && errno != EINTR && errno != EAGAIN) break;
  }

  std::fprintf(stderr, "fwdecayd: draining and checkpointing...\n");
  daemon.Stop();
  std::fprintf(stderr, "fwdecayd: clean shutdown\n");
  return 0;
}
